package harness

import (
	"errors"
	"fmt"

	"pmemspec/internal/fatomic"
	"pmemspec/internal/machine"
	"pmemspec/internal/mem"
	"pmemspec/internal/osint"
	"pmemspec/internal/persist"
	"pmemspec/internal/sim"
	"pmemspec/internal/workload"
)

// CrashOutcome is the result of one crash-recovery trial.
type CrashOutcome struct {
	Design    machine.Design
	Workload  string
	CrashAtNS int64
	Crashed   bool // false: the run finished before the crash point
	Recovery  fatomic.RecoveryReport
	VerifyErr error
}

// RunWithCrash executes the workload, injects a power failure at
// crashAtNS (simulated time), runs the §6 recovery protocol on the
// surviving persisted image, and verifies the workload's structural
// invariants against the recovered state. It is the end-to-end
// crash-consistency check: under every design, a recovered image must
// satisfy the workload invariants.
func RunWithCrash(design machine.Design, w workload.Workload, p workload.Params, crashAtNS int64, opts ...Option) (CrashOutcome, error) {
	out := CrashOutcome{Design: design, Workload: w.Name(), CrashAtNS: crashAtNS}
	cfg := machine.DefaultConfig(design, p.Threads)
	for _, o := range opts {
		o(&cfg)
	}
	if syn, ok := w.(*workload.Synthetic); ok {
		syn.SetConfigure(cfg)
	}
	if mb := w.MemBytes(p); mb > cfg.MemBytes {
		cfg.MemBytes = mb
	}
	m, err := machine.New(cfg)
	if err != nil {
		return out, err
	}
	os := osint.New(m)
	rt := fatomic.New(m, persist.ForDesign(design), os, fatomic.Lazy)
	heap := mem.NewHeap(m.Space(), fatomic.HeapReserve(p.Threads))
	env := &workload.Env{M: m, RT: rt, Heap: heap, P: p}

	barrier := sim.NewBarrier(p.Threads)
	setupDone := sim.Forever
	finished := 0
	for tid := 0; tid < p.Threads; tid++ {
		tid := tid
		m.Spawn(fmt.Sprintf("worker%d", tid), func(t *machine.Thread) {
			rt.WarmLog(t)
			if tid == 0 {
				w.Setup(env, t)
				// Initialization completes durably (see
				// Machine.SyncPersistedToArch) before the measured,
				// crash-exposed kernel begins.
				m.SyncPersistedToArch()
				setupDone = t.Clock()
			}
			barrier.Wait(t.Sim())
			w.Run(env, t, tid)
			finished++
		})
	}
	m.ScheduleCrash(sim.NS(crashAtNS))
	err = m.Run()
	switch {
	case errors.Is(err, machine.ErrCrashed):
		// The crash event always fires (possibly after all workers
		// completed); the run "crashed" only if it interrupted work.
		out.Crashed = finished < p.Threads
	case err == nil:
	default:
		return out, err
	}
	if out.Crashed && sim.NS(crashAtNS) < setupDone {
		// Crash during single-threaded setup: the structures may not
		// exist yet, so only the log protocol is checkable.
		if _, err := fatomic.Recover(m.Space().PM, p.Threads); err != nil {
			out.VerifyErr = err
		}
		return out, nil
	}
	rep, err := fatomic.Recover(m.Space().PM, p.Threads)
	if err != nil {
		return out, fmt.Errorf("recovery failed: %w", err)
	}
	out.Recovery = rep
	out.VerifyErr = safeVerify(w, m.Space().PM)
	return out, nil
}

// safeVerify runs Verify on a recovered image, converting a panic (e.g.
// a wild pointer walked out of the image — itself a consistency
// violation) into an error instead of killing the checker.
func safeVerify(w workload.Workload, img *mem.Image) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("verification panicked (wild pointer in recovered image): %v", r)
		}
	}()
	return w.Verify(img, 0)
}

// CrashSweep runs RunWithCrash at evenly spaced crash points and reports
// the outcomes; any VerifyErr is a crash-consistency violation.
func CrashSweep(design machine.Design, name string, p workload.Params, points int, maxNS int64, opts ...Option) ([]CrashOutcome, error) {
	if points < 1 {
		return nil, fmt.Errorf("harness: need at least one crash point")
	}
	var outs []CrashOutcome
	for i := 1; i <= points; i++ {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		at := maxNS * int64(i) / int64(points)
		o, err := RunWithCrash(design, w, p, at, opts...)
		if err != nil {
			return outs, err
		}
		outs = append(outs, o)
	}
	return outs, nil
}
