package harness

import (
	"testing"

	"pmemspec/internal/machine"
	"pmemspec/internal/workload"
)

// TestStrandDesignRunsAllWorkloads: the StrandWeaver extension runs and
// verifies the whole suite.
func TestStrandDesignRunsAllWorkloads(t *testing.T) {
	for _, name := range workload.Names() {
		w, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(machine.Strand, w, params(name, 2, 20, 1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Committed == 0 {
			t.Errorf("%s: nothing committed", name)
		}
		if res.MStats.NewStrands == 0 || res.MStats.JoinStrands == 0 {
			t.Errorf("%s: strand instructions not exercised (%d/%d)", name, res.MStats.NewStrands, res.MStats.JoinStrands)
		}
	}
}

// TestStrandBeatsHOPS reproduces the StrandWeaver paper's claim the
// PMEM-Spec paper cites: strand persistency outperforms the epoch-based
// HOPS (its per-update strands drain concurrently where HOPS's epochs
// chain).
func TestStrandBeatsHOPS(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison sweep")
	}
	var strandG, hopsG, specG float64 = 1, 1, 1
	for _, name := range []string{"tpcc", "rbtree", "vacation"} {
		thr := map[machine.Design]float64{}
		for _, d := range []machine.Design{machine.HOPS, machine.Strand, machine.PMEMSpec} {
			w, _ := workload.ByName(name)
			res, err := Run(d, w, params(name, 8, 120, 1))
			if err != nil {
				t.Fatal(err)
			}
			thr[d] = res.Throughput
		}
		t.Logf("%-10s hops=%.0f strand=%.0f spec=%.0f", name, thr[machine.HOPS], thr[machine.Strand], thr[machine.PMEMSpec])
		strandG *= thr[machine.Strand]
		hopsG *= thr[machine.HOPS]
		specG *= thr[machine.PMEMSpec]
	}
	if strandG <= hopsG {
		t.Errorf("StrandWeaver (%.0f) not faster than HOPS (%.0f) in aggregate", strandG, hopsG)
	}
}

// TestStrandCrashConsistency: the strand design's recovered images
// satisfy the workload invariants too.
func TestStrandCrashConsistency(t *testing.T) {
	p := workload.Params{Threads: 2, Ops: 60, DataSize: 64, Seed: 9}
	outs, err := CrashSweep(machine.Strand, "tpcc-mix", p, 8, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outs {
		if o.VerifyErr != nil {
			t.Errorf("crash@%dns: %v", o.CrashAtNS, o.VerifyErr)
		}
	}
}
