package harness

import (
	"testing"

	"pmemspec/internal/machine"
	"pmemspec/internal/workload"
)

// TestAllWorkloadsAllDesigns is the integration smoke: every Table 4
// benchmark runs and verifies on every design.
func TestAllWorkloadsAllDesigns(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, d := range machine.Designs {
				w, err := workload.ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				res, err := Run(d, w, params(name, 2, 20, 1))
				if err != nil {
					t.Fatalf("%s: %v", d, err)
				}
				if res.Committed == 0 || res.Throughput <= 0 {
					t.Errorf("%s: committed=%d throughput=%g", d, res.Committed, res.Throughput)
				}
			}
		})
	}
}

// TestFig9Shape asserts the paper's headline ordering at a reduced op
// count: PMEM-Spec and HOPS beat the IntelX86 baseline on (geomean)
// average, PMEM-Spec beats HOPS, and DPO trails the baseline.
func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second figure sweep")
	}
	rows, err := Fig9(8, 120, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 benchmarks", len(rows))
	}
	g := Geomeans(rows)
	t.Logf("geomeans: x86=%.3f dpo=%.3f hops=%.3f spec=%.3f",
		g[machine.IntelX86], g[machine.DPO], g[machine.HOPS], g[machine.PMEMSpec])
	if g[machine.PMEMSpec] <= 1.05 {
		t.Errorf("PMEM-Spec geomean %.3f not meaningfully above baseline", g[machine.PMEMSpec])
	}
	if g[machine.HOPS] <= 1.0 {
		t.Errorf("HOPS geomean %.3f not above baseline", g[machine.HOPS])
	}
	if g[machine.PMEMSpec] <= g[machine.HOPS] {
		t.Errorf("PMEM-Spec (%.3f) does not outperform HOPS (%.3f)", g[machine.PMEMSpec], g[machine.HOPS])
	}
	if g[machine.DPO] >= 1.0 {
		t.Errorf("DPO geomean %.3f not below baseline", g[machine.DPO])
	}
}

// TestFig11Shape: a 1-entry speculation buffer degrades throughput
// relative to the overflow-free 16-entry configuration, and capacity
// helps monotonically in the large.
func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second figure sweep")
	}
	// Enough operations for the eviction-streaming configuration to
	// cycle the LLC and pressure the buffer.
	pts, err := Fig11(8, 150, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 || pts[0].Entries != 1 || pts[4].Entries != 16 {
		t.Fatalf("points = %+v", pts)
	}
	for _, p := range pts {
		t.Logf("entries=%2d avg=%.3f overflows=%d", p.Entries, p.AvgNorm, p.Overflows)
	}
	if pts[0].AvgNorm >= pts[4].AvgNorm {
		t.Errorf("size 1 (%.3f) not slower than size 16 (%.3f)", pts[0].AvgNorm, pts[4].AvgNorm)
	}
	if pts[0].Overflows == 0 {
		t.Error("no overflows at size 1")
	}
}

// TestFig12Shape: both HOPS and PMEM-Spec stay above the baseline even
// at a 100 ns persist-path latency (§8.3.3).
func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second figure sweep")
	}
	pts, err := Fig12(4, 60, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		t.Logf("latency=%dns hops=%.3f spec=%.3f", p.LatencyNS, p.Geomean[machine.HOPS], p.Geomean[machine.PMEMSpec])
		if p.Geomean[machine.PMEMSpec] <= 1.0 {
			t.Errorf("PMEM-Spec below baseline at %dns path latency", p.LatencyNS)
		}
		// Known deviation (EXPERIMENTS.md): our HOPS dips a few percent
		// below baseline at ≥80ns drain latency because the reduced-op
		// runs have shorter FASEs (more frequent dfences) than the
		// paper's; it must stay close.
		if p.Geomean[machine.HOPS] <= 0.9 {
			t.Errorf("HOPS far below baseline at %dns drain latency", p.LatencyNS)
		}
	}
	// Longer paths cannot speed PMEM-Spec up.
	if pts[len(pts)-1].Geomean[machine.PMEMSpec] > pts[0].Geomean[machine.PMEMSpec]*1.02 {
		t.Error("PMEM-Spec faster at 100ns than at 20ns")
	}
}

// TestMisspecStudy reproduces §8.4: zero misspeculation across the suite
// at the default configuration; the synthetic generator misspeculates
// only under an inflated path latency, and recovery repairs every case.
func TestMisspecStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second study")
	}
	res, err := MisspecStudy(4, 60, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, n := range res.PerBenchmark {
		if n != 0 {
			t.Errorf("%s: %d misspeculations at the default configuration, want 0", name, n)
		}
	}
	t.Logf("synthetic default: %+v", res.SyntheticDefault)
	t.Logf("synthetic slow:    %+v", res.SyntheticSlow)
	if res.SyntheticDefault.Detected != 0 {
		t.Errorf("synthetic misspeculated at default path latency: %+v", res.SyntheticDefault)
	}
	if res.SyntheticSlow.Detected == 0 {
		t.Error("synthetic generator failed to produce load misspeculation at 10x latency")
	}
	if res.SyntheticSlow.StaleObserved == 0 {
		t.Error("no stale values actually reached the program")
	}
	if res.SyntheticSlow.Aborts == 0 {
		t.Error("no recovery aborts despite detections")
	}
	// Detection must cover ground truth: every actually-stale fetch that
	// mattered led to a signal (completeness within the window).
	if res.SyntheticSlow.Detected < int(res.SyntheticSlow.StaleObserved) {
		t.Errorf("detected %d < observed stale %d", res.SyntheticSlow.Detected, res.SyntheticSlow.StaleObserved)
	}
}

// TestDetectionAblation reproduces §5.1.3: the fetch-based scheme floods
// false misspeculations on write-allocate misses; the eviction-based
// scheme does not.
func TestDetectionAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second study")
	}
	res, err := DetectionAblation(4, 40, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev, fb := res[0], res[1]
	t.Logf("eviction-based: %+v", ev)
	t.Logf("fetch-based:    %+v", fb)
	if ev.FalsePositives != 0 {
		t.Errorf("eviction-based scheme produced %d false positives", ev.FalsePositives)
	}
	if fb.FalsePositives == 0 {
		t.Error("fetch-based scheme produced no false positives")
	}
}

// TestDeterministicHarness: identical parameters give identical results.
func TestDeterministicHarness(t *testing.T) {
	run := func() Result {
		w, _ := workload.ByName("tpcc")
		res, err := Run(machine.PMEMSpec, w, params("tpcc", 4, 50, 7))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.KernelTime != b.KernelTime || a.Committed != b.Committed {
		t.Errorf("nondeterministic: %v/%d vs %v/%d", a.KernelTime, a.Committed, b.KernelTime, b.Committed)
	}
}

// TestSeedChangesSchedule: different seeds produce different timings
// (the workloads actually use their RNG).
func TestSeedChangesSchedule(t *testing.T) {
	times := map[int64]bool{}
	for seed := int64(1); seed <= 3; seed++ {
		w, _ := workload.ByName("hashmap")
		res, err := Run(machine.PMEMSpec, w, params("hashmap", 2, 40, seed))
		if err != nil {
			t.Fatal(err)
		}
		times[int64(res.KernelTime)] = true
	}
	if len(times) < 2 {
		t.Error("three seeds produced identical kernel times")
	}
}
