package harness

import (
	"fmt"

	"pmemspec/internal/fatomic"
	"pmemspec/internal/machine"
	"pmemspec/internal/mem"
	"pmemspec/internal/osint"
	"pmemspec/internal/persist"
	"pmemspec/internal/sim"
	"pmemspec/internal/stats"
	"pmemspec/internal/workload"
)

// RunDetectOnly is Run without the OS/runtime recovery wiring:
// misspeculations are detected and counted by the hardware but never
// delivered, which the §5.1.3-vs-§5.1.4 ablation needs (under the
// fetch-based scheme every write-allocate miss misspeculates, and
// recovering from each would livelock — the paper's "not acceptable
// recovery overheads").
func RunDetectOnly(design machine.Design, w workload.Workload, p workload.Params, opts ...Option) (Result, error) {
	return runCustom(design, w, p, fatomic.Lazy, false, opts...)
}

func run(design machine.Design, w workload.Workload, p workload.Params, mode fatomic.Mode, opts ...Option) (Result, error) {
	return runCustom(design, w, p, mode, true, opts...)
}

// Fig9Row is one benchmark's throughput under each design, normalized to
// the IntelX86 baseline — one group of bars in Figure 9.
type Fig9Row struct {
	Workload   string
	Raw        map[machine.Design]float64 // FASEs per simulated second
	Normalized map[machine.Design]float64
}

// Fig9 reproduces Figure 9 (and, at other core counts, Figure 10's
// panels): all Table 4 benchmarks × all four designs.
func Fig9(threads, ops int, seed int64, progress func(string)) ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, name := range workload.Names() {
		row := Fig9Row{
			Workload:   name,
			Raw:        map[machine.Design]float64{},
			Normalized: map[machine.Design]float64{},
		}
		for _, d := range machine.Designs {
			w, err := workload.ByName(name)
			if err != nil {
				return nil, err
			}
			if progress != nil {
				progress(fmt.Sprintf("fig9: %s / %s", name, d))
			}
			res, err := Run(d, w, params(name, threads, ops, seed))
			if err != nil {
				return nil, err
			}
			row.Raw[d] = res.Throughput
		}
		base := row.Raw[machine.IntelX86]
		for d, v := range row.Raw {
			row.Normalized[d] = v / base
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Geomeans aggregates Fig9 rows into the per-design geometric means the
// paper quotes (1.27x for PMEM-Spec, 1.15x for HOPS at 8 cores).
func Geomeans(rows []Fig9Row) map[machine.Design]float64 {
	out := map[machine.Design]float64{}
	for _, d := range machine.Designs {
		var xs []float64
		for _, r := range rows {
			xs = append(xs, r.Normalized[d])
		}
		out[d] = stats.Geomean(xs)
	}
	return out
}

// Fig10 reproduces Figure 10: the Fig9 sweep at 16, 32 and 64 cores.
func Fig10(coreCounts []int, ops int, seed int64, progress func(string)) (map[int][]Fig9Row, error) {
	out := map[int][]Fig9Row{}
	for _, cores := range coreCounts {
		rows, err := Fig9(cores, ops, seed, func(s string) {
			if progress != nil {
				progress(fmt.Sprintf("%d cores: %s", cores, s))
			}
		})
		if err != nil {
			return nil, err
		}
		out[cores] = rows
	}
	return out, nil
}

// Fig11Point is one speculation-buffer size's average throughput,
// normalized to the overflow-free (largest) size.
type Fig11Point struct {
	Entries   int
	AvgNorm   float64
	Overflows uint64
}

// Fig11 reproduces Figure 11: PMEM-Spec throughput at speculation-buffer
// sizes {1,2,4,8,16}, averaged over the benchmarks and normalized to the
// 16-entry (overflow-free) configuration.
func Fig11(threads, ops int, seed int64, progress func(string)) ([]Fig11Point, error) {
	sizes := []int{1, 2, 4, 8, 16}
	perSize := make(map[int][]float64)
	overflows := make(map[int]uint64)
	for _, name := range workload.Names() {
		for _, size := range sizes {
			w, err := workload.ByName(name)
			if err != nil {
				return nil, err
			}
			if progress != nil {
				progress(fmt.Sprintf("fig11: %s / %d entries", name, size))
			}
			p := params(name, threads, ops, seed)
			if name == "memcached" {
				// Buffer entries come from dirty LLC evictions (§8.3.2),
				// so the buffer-sizing sweep needs the eviction-streaming
				// configuration: a value store well past the LLC.
				p.Scale = 32768
			}
			res, err := Run(machine.PMEMSpec, w, p, WithSpecBufEntries(size))
			if err != nil {
				return nil, err
			}
			perSize[size] = append(perSize[size], res.Throughput)
			overflows[size] += res.MStats.SpecOverflowPauses
		}
	}
	// Normalize each benchmark's series by its 16-entry value, then
	// average.
	ref := perSize[16]
	var out []Fig11Point
	for _, size := range sizes {
		var norm []float64
		for i, v := range perSize[size] {
			norm = append(norm, v/ref[i])
		}
		out = append(out, Fig11Point{Entries: size, AvgNorm: stats.Mean(norm), Overflows: overflows[size]})
	}
	return out, nil
}

// Fig12Point is one persist-path latency's geomean throughput (vs the
// IntelX86 baseline) for HOPS and PMEM-Spec.
type Fig12Point struct {
	LatencyNS int64
	Geomean   map[machine.Design]float64
}

// Fig12 reproduces Figure 12: persist-path latency 20→100 ns for HOPS
// and PMEM-Spec, geomean across benchmarks normalized to IntelX86.
// (For HOPS the latency scales its buffer-drain path, the analogous
// resource.)
func Fig12(threads, ops int, seed int64, progress func(string)) ([]Fig12Point, error) {
	latencies := []int64{20, 40, 60, 80, 100}
	// Baseline throughput per workload.
	base := map[string]float64{}
	for _, name := range workload.Names() {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		if progress != nil {
			progress(fmt.Sprintf("fig12: baseline %s", name))
		}
		res, err := Run(machine.IntelX86, w, params(name, threads, ops, seed))
		if err != nil {
			return nil, err
		}
		base[name] = res.Throughput
	}
	var out []Fig12Point
	for _, lat := range latencies {
		pt := Fig12Point{LatencyNS: lat, Geomean: map[machine.Design]float64{}}
		for _, d := range []machine.Design{machine.HOPS, machine.PMEMSpec} {
			var norm []float64
			for _, name := range workload.Names() {
				w, err := workload.ByName(name)
				if err != nil {
					return nil, err
				}
				if progress != nil {
					progress(fmt.Sprintf("fig12: %s / %dns / %s", d, lat, name))
				}
				opt := WithPathLatencyNS(lat)
				if d == machine.HOPS {
					// The analogous knob for the buffered design: its
					// total store-to-controller drain latency becomes
					// the swept value.
					opt = func(c *machine.Config) {
						c.PBufDrainLag = sim.NS(lat) - c.WritebackLatency
					}
				}
				res, err := Run(d, w, params(name, threads, ops, seed), opt)
				if err != nil {
					return nil, err
				}
				norm = append(norm, res.Throughput/base[name])
			}
			pt.Geomean[d] = stats.Geomean(norm)
		}
		out = append(out, pt)
	}
	return out, nil
}

// MisspecResult is the §8.4 study outcome.
type MisspecResult struct {
	// PerBenchmark is the misspeculation count of each Table 4 benchmark
	// at the default configuration (the paper observed zero).
	PerBenchmark map[string]uint64
	// SyntheticDefault is the synthetic generator's detections at the
	// default 20 ns path (expected zero: the conflict-eviction sequence
	// cannot beat the persist).
	SyntheticDefault SyntheticOutcome
	// SyntheticSlow is the generator at a 10× path latency: stale reads
	// occur, are detected, and the runtime recovers.
	SyntheticSlow SyntheticOutcome
}

// SyntheticOutcome summarizes one synthetic-generator run.
type SyntheticOutcome struct {
	StaleObserved uint64 // ground truth: reloads that returned old data
	StaleFetches  uint64 // ground truth at the controller
	Detected      int    // hardware detections
	Aborts        uint64 // runtime recoveries
	Committed     uint64
	VerifyOK      bool
}

// MisspecStudy reproduces §8.4: misspeculation rates across the suite
// and the synthetic load-misspeculation generator under default and
// inflated persist-path latencies.
func MisspecStudy(threads, ops int, seed int64, progress func(string)) (MisspecResult, error) {
	out := MisspecResult{PerBenchmark: map[string]uint64{}}
	for _, name := range workload.Names() {
		w, err := workload.ByName(name)
		if err != nil {
			return out, err
		}
		if progress != nil {
			progress(fmt.Sprintf("misspec: %s", name))
		}
		res, err := Run(machine.PMEMSpec, w, params(name, threads, ops, seed))
		if err != nil {
			return out, err
		}
		out.PerBenchmark[name] = uint64(len(res.MStats.Misspeculations))
	}
	var err error
	out.SyntheticDefault, err = runSynthetic(ops, seed, 20, progress)
	if err != nil {
		return out, err
	}
	out.SyntheticSlow, err = runSynthetic(ops, seed, 500, progress)
	return out, err
}

// runSynthetic runs the §8.4 generator on a machine whose LLC is small
// and low-associative enough for the conflict-eviction recipe to fit
// inside the speculation window ("Depending on the cache hierarchy, the
// program may require tens of memory accesses"). The slow configuration
// inflates the persist-path latency 25×; with the two PM fetches the
// minimal eviction recipe needs (~420 ns), nothing shorter can lose the
// race — matching the paper's observation that only an unrealistically
// long path latency produces load misspeculation.
func runSynthetic(ops int, seed int64, pathNS int64, progress func(string)) (SyntheticOutcome, error) {
	if progress != nil {
		progress(fmt.Sprintf("misspec: synthetic @%dns path", pathNS))
	}
	syn := workload.NewSynthetic()
	p := workload.Params{Threads: 1, Ops: ops, DataSize: 64, Seed: seed}
	res, err := Run(machine.PMEMSpec, syn, p,
		WithSmallLLC(32*1024, 2),
		WithPathLatencyNS(pathNS),
		func(c *machine.Config) { c.SpecWindow = sim.NS(pathNS * 8) })
	if err != nil {
		return SyntheticOutcome{}, err
	}
	return SyntheticOutcome{
		StaleObserved: syn.StaleObserved,
		StaleFetches:  res.MStats.StaleFetches,
		Detected:      len(res.MStats.Misspeculations),
		Aborts:        res.RStats.Aborts,
		Committed:     res.Committed,
		VerifyOK:      true, // Run verified already
	}, nil
}

// AblationResult compares the §5.1.4 eviction-based detector against the
// rejected §5.1.3 fetch-based one on a write-allocate-heavy workload.
type AblationResult struct {
	Scheme         string
	Detections     int
	ActualStale    uint64 // ground truth: real stale fetches
	FalsePositives int    // detections beyond the real stale fetches
	Throughput     float64
}

// DetectionAblation reproduces the §5.1.3 false-misspeculation argument:
// under the fetch-based scheme, every store that misses in the caches is
// (falsely) flagged when its own persist arrives.
func DetectionAblation(threads, ops int, seed int64, progress func(string)) ([2]AblationResult, error) {
	var out [2]AblationResult
	for i, fetchBased := range []bool{false, true} {
		name := "eviction-based (§5.1.4)"
		var opts []Option
		if fetchBased {
			name = "fetch-based (§5.1.3)"
			opts = append(opts, WithFetchBasedDetection())
		}
		if progress != nil {
			progress("ablation: " + name)
		}
		// Memcached's large value store produces steady write-allocate
		// misses — the pattern of Figure 4. The window is widened so it
		// covers the fetch-to-persist gap of a write-allocate miss
		// (media read + path), which is what makes the fetch-based
		// scheme's false positives visible.
		opts = append(opts, func(c *machine.Config) { c.SpecWindow = sim.NS(1000) })
		w, err := workload.ByName("memcached")
		if err != nil {
			return out, err
		}
		res, err := RunDetectOnly(machine.PMEMSpec, w, params("memcached", threads, ops, seed), opts...)
		if err != nil {
			return out, err
		}
		fp := len(res.MStats.Misspeculations) - int(res.MStats.StaleFetches)
		if fp < 0 {
			fp = 0
		}
		out[i] = AblationResult{
			Scheme:         name,
			Detections:     len(res.MStats.Misspeculations),
			ActualStale:    res.MStats.StaleFetches,
			FalsePositives: fp,
			Throughput:     res.Throughput,
		}
	}
	return out, nil
}

// runCustom is the shared runner; register selects whether the OS relay
// and recovery are wired.
func runCustom(design machine.Design, w workload.Workload, p workload.Params, mode fatomic.Mode, register bool, opts ...Option) (Result, error) {
	cfg := machine.DefaultConfig(design, p.Threads)
	for _, o := range opts {
		o(&cfg)
	}
	if syn, ok := w.(*workload.Synthetic); ok {
		syn.SetConfigure(cfg)
	}
	if mb := w.MemBytes(p); mb > cfg.MemBytes {
		cfg.MemBytes = mb
	}
	m, err := machine.New(cfg)
	if err != nil {
		return Result{}, err
	}
	var os *osint.OS
	if register {
		os = osint.New(m)
	}
	rt := fatomic.New(m, persist.ForDesign(design), os, mode)
	heap := mem.NewHeap(m.Space(), fatomic.HeapReserve(p.Threads))
	env := &workload.Env{M: m, RT: rt, Heap: heap, P: p}
	return execute(m, rt, env, w, p)
}
