package harness

import (
	"fmt"

	"pmemspec/internal/fatomic"
	"pmemspec/internal/machine"
	"pmemspec/internal/mem"
	"pmemspec/internal/metrics"
	"pmemspec/internal/osint"
	"pmemspec/internal/persist"
	"pmemspec/internal/sim"
	"pmemspec/internal/stats"
	"pmemspec/internal/workload"
)

// RunDetectOnly is Run without the OS/runtime recovery wiring:
// misspeculations are detected and counted by the hardware but never
// delivered, which the §5.1.3-vs-§5.1.4 ablation needs (under the
// fetch-based scheme every write-allocate miss misspeculates, and
// recovering from each would livelock — the paper's "not acceptable
// recovery overheads").
func RunDetectOnly(design machine.Design, w workload.Workload, p workload.Params, opts ...Option) (Result, error) {
	return runCustom(design, w, p, fatomic.Lazy, false, opts...)
}

func run(design machine.Design, w workload.Workload, p workload.Params, mode fatomic.Mode, opts ...Option) (Result, error) {
	return runCustom(design, w, p, mode, true, opts...)
}

// Runner executes the experiment drivers with host-level parallelism:
// each driver enumerates its (workload × design × config) grid as
// independent jobs and dispatches them through RunAll. Parallel sets the
// worker count (≤ 0: GOMAXPROCS); results are identical at any setting.
// Progress, if non-nil, receives one label per started run; RunAll
// serializes the calls.
type Runner struct {
	Parallel int
	Progress func(string)

	// Metrics, when non-nil, accumulates every run's observability
	// snapshot into the (design, workload) grid. Merging happens on the
	// dispatching goroutine in job-index order, so the grid is
	// byte-identical at any Parallel setting.
	Metrics *metrics.Grid

	// Timeline, when non-nil, selects which runs record an event
	// timeline; recorded timelines land in Timelines (index order),
	// named "Design/workload".
	Timeline  func(machine.Design, string) bool
	Timelines []metrics.NamedTimeline
}

// benchJob builds the job for one (design, workload, params) run.
func (r *Runner) benchJob(label string, d machine.Design, name string, p workload.Params, opts ...Option) Job[Result] {
	if r.Timeline != nil && r.Timeline(d, name) {
		opts = append(opts, WithTimeline())
	}
	return Job[Result]{Label: label, Run: func() (Result, error) {
		w, err := workload.ByName(name)
		if err != nil {
			return Result{}, err
		}
		return Run(d, w, p, opts...)
	}}
}

// collect folds a completed batch's per-run metrics and timelines into
// the runner, walking job-index order to keep the outputs deterministic.
func (r *Runner) collect(results []JobResult[Result]) {
	for i := range results {
		res := results[i].Result
		if r.Metrics != nil {
			r.Metrics.Add(res.Design.String(), res.Workload, res.Metrics)
		}
		if res.Timeline != nil {
			r.Timelines = append(r.Timelines, metrics.NamedTimeline{
				Name: res.Design.String() + "/" + res.Workload,
				TL:   res.Timeline,
			})
		}
	}
}

// Fig9Row is one benchmark's throughput under each design, normalized to
// the IntelX86 baseline — one group of bars in Figure 9.
type Fig9Row struct {
	Workload   string
	Raw        map[machine.Design]float64 // FASEs per simulated second
	Normalized map[machine.Design]float64
}

// Fig9 reproduces Figure 9 (and, at other core counts, Figure 10's
// panels): all Table 4 benchmarks × all four designs.
func Fig9(threads, ops int, seed int64, progress func(string)) ([]Fig9Row, error) {
	return (&Runner{Progress: progress}).Fig9(threads, ops, seed)
}

// Fig9 runs the Figure 9 grid on the runner's worker pool.
func (r *Runner) Fig9(threads, ops int, seed int64) ([]Fig9Row, error) {
	names := workload.Names()
	designs := machine.Designs
	jobs := make([]Job[Result], 0, len(names)*len(designs))
	for _, name := range names {
		for _, d := range designs {
			jobs = append(jobs, r.benchJob(fmt.Sprintf("fig9: %s / %s", name, d),
				d, name, params(name, threads, ops, seed)))
		}
	}
	results := RunAll(jobs, r.Parallel, r.Progress)
	if err := firstError(results); err != nil {
		return nil, err
	}
	r.collect(results)
	var rows []Fig9Row
	for wi, name := range names {
		row := Fig9Row{
			Workload:   name,
			Raw:        map[machine.Design]float64{},
			Normalized: map[machine.Design]float64{},
		}
		for di, d := range designs {
			row.Raw[d] = results[wi*len(designs)+di].Result.Throughput
		}
		base := row.Raw[machine.IntelX86]
		for d, v := range row.Raw {
			row.Normalized[d] = v / base
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Geomeans aggregates Fig9 rows into the per-design geometric means the
// paper quotes (1.27x for PMEM-Spec, 1.15x for HOPS at 8 cores).
func Geomeans(rows []Fig9Row) map[machine.Design]float64 {
	out := map[machine.Design]float64{}
	for _, d := range machine.Designs {
		var xs []float64
		for _, r := range rows {
			xs = append(xs, r.Normalized[d])
		}
		out[d] = stats.Geomean(xs)
	}
	return out
}

// Fig10 reproduces Figure 10: the Fig9 sweep at 16, 32 and 64 cores.
func Fig10(coreCounts []int, ops int, seed int64, progress func(string)) (map[int][]Fig9Row, error) {
	return (&Runner{Progress: progress}).Fig10(coreCounts, ops, seed)
}

// Fig10 runs every panel's grid through one pool dispatch, so the large
// 64-core runs overlap with the cheaper panels instead of serializing
// panel by panel.
func (r *Runner) Fig10(coreCounts []int, ops int, seed int64) (map[int][]Fig9Row, error) {
	names := workload.Names()
	designs := machine.Designs
	var jobs []Job[Result]
	for _, cores := range coreCounts {
		for _, name := range names {
			for _, d := range designs {
				jobs = append(jobs, r.benchJob(fmt.Sprintf("%d cores: fig9: %s / %s", cores, name, d),
					d, name, params(name, cores, ops, seed)))
			}
		}
	}
	results := RunAll(jobs, r.Parallel, r.Progress)
	if err := firstError(results); err != nil {
		return nil, err
	}
	r.collect(results)
	out := map[int][]Fig9Row{}
	i := 0
	for _, cores := range coreCounts {
		var rows []Fig9Row
		for _, name := range names {
			row := Fig9Row{
				Workload:   name,
				Raw:        map[machine.Design]float64{},
				Normalized: map[machine.Design]float64{},
			}
			for _, d := range designs {
				row.Raw[d] = results[i].Result.Throughput
				i++
			}
			base := row.Raw[machine.IntelX86]
			for d, v := range row.Raw {
				row.Normalized[d] = v / base
			}
			rows = append(rows, row)
		}
		out[cores] = rows
	}
	return out, nil
}

// Fig11Point is one speculation-buffer size's average throughput,
// normalized to the overflow-free (largest) size.
type Fig11Point struct {
	Entries   int
	AvgNorm   float64
	Overflows uint64
}

// Fig11 reproduces Figure 11: PMEM-Spec throughput at speculation-buffer
// sizes {1,2,4,8,16}, averaged over the benchmarks and normalized to the
// 16-entry (overflow-free) configuration.
func Fig11(threads, ops int, seed int64, progress func(string)) ([]Fig11Point, error) {
	return (&Runner{Progress: progress}).Fig11(threads, ops, seed)
}

// Fig11 runs the buffer-size sweep on the runner's worker pool.
func (r *Runner) Fig11(threads, ops int, seed int64) ([]Fig11Point, error) {
	sizes := []int{1, 2, 4, 8, 16}
	names := workload.Names()
	jobs := make([]Job[Result], 0, len(names)*len(sizes))
	for _, name := range names {
		for _, size := range sizes {
			p := params(name, threads, ops, seed)
			if name == "memcached" {
				// Buffer entries come from dirty LLC evictions (§8.3.2),
				// so the buffer-sizing sweep needs the eviction-streaming
				// configuration: a value store well past the LLC.
				p.Scale = 32768
			}
			jobs = append(jobs, r.benchJob(fmt.Sprintf("fig11: %s / %d entries", name, size),
				machine.PMEMSpec, name, p, WithSpecBufEntries(size)))
		}
	}
	results := RunAll(jobs, r.Parallel, r.Progress)
	if err := firstError(results); err != nil {
		return nil, err
	}
	r.collect(results)
	perSize := make(map[int][]float64)
	overflows := make(map[int]uint64)
	for wi := range names {
		for si, size := range sizes {
			res := results[wi*len(sizes)+si].Result
			perSize[size] = append(perSize[size], res.Throughput)
			overflows[size] += res.MStats.SpecOverflowPauses
		}
	}
	// Normalize each benchmark's series by its 16-entry value, then
	// average.
	ref := perSize[16]
	var out []Fig11Point
	for _, size := range sizes {
		var norm []float64
		for i, v := range perSize[size] {
			norm = append(norm, v/ref[i])
		}
		out = append(out, Fig11Point{Entries: size, AvgNorm: stats.Mean(norm), Overflows: overflows[size]})
	}
	return out, nil
}

// Fig12Point is one persist-path latency's geomean throughput (vs the
// IntelX86 baseline) for HOPS and PMEM-Spec.
type Fig12Point struct {
	LatencyNS int64
	Geomean   map[machine.Design]float64
}

// Fig12 reproduces Figure 12: persist-path latency 20→100 ns for HOPS
// and PMEM-Spec, geomean across benchmarks normalized to IntelX86.
// (For HOPS the latency scales its buffer-drain path, the analogous
// resource.)
func Fig12(threads, ops int, seed int64, progress func(string)) ([]Fig12Point, error) {
	return (&Runner{Progress: progress}).Fig12(threads, ops, seed)
}

// Fig12 dispatches the baseline runs and the whole latency sweep as one
// job batch; normalization happens after the barrier.
func (r *Runner) Fig12(threads, ops int, seed int64) ([]Fig12Point, error) {
	latencies := []int64{20, 40, 60, 80, 100}
	sweepDesigns := []machine.Design{machine.HOPS, machine.PMEMSpec}
	names := workload.Names()

	var jobs []Job[Result]
	for _, name := range names {
		jobs = append(jobs, r.benchJob(fmt.Sprintf("fig12: baseline %s", name),
			machine.IntelX86, name, params(name, threads, ops, seed)))
	}
	for _, lat := range latencies {
		for _, d := range sweepDesigns {
			for _, name := range names {
				opt := WithPathLatencyNS(lat)
				if d == machine.HOPS {
					// The analogous knob for the buffered design: its
					// total store-to-controller drain latency becomes
					// the swept value.
					lat := lat
					opt = func(c *machine.Config) {
						c.PBufDrainLag = sim.NS(lat) - c.WritebackLatency
					}
				}
				jobs = append(jobs, r.benchJob(fmt.Sprintf("fig12: %s / %dns / %s", d, lat, name),
					d, name, params(name, threads, ops, seed), opt))
			}
		}
	}
	results := RunAll(jobs, r.Parallel, r.Progress)
	if err := firstError(results); err != nil {
		return nil, err
	}
	r.collect(results)
	base := map[string]float64{}
	for wi, name := range names {
		base[name] = results[wi].Result.Throughput
	}
	i := len(names)
	var out []Fig12Point
	for _, lat := range latencies {
		pt := Fig12Point{LatencyNS: lat, Geomean: map[machine.Design]float64{}}
		for _, d := range sweepDesigns {
			var norm []float64
			for _, name := range names {
				norm = append(norm, results[i].Result.Throughput/base[name])
				i++
			}
			pt.Geomean[d] = stats.Geomean(norm)
		}
		out = append(out, pt)
	}
	return out, nil
}

// MisspecResult is the §8.4 study outcome.
type MisspecResult struct {
	// PerBenchmark is the misspeculation count of each Table 4 benchmark
	// at the default configuration (the paper observed zero).
	PerBenchmark map[string]uint64
	// SyntheticDefault is the synthetic generator's detections at the
	// default 20 ns path (expected zero: the conflict-eviction sequence
	// cannot beat the persist).
	SyntheticDefault SyntheticOutcome
	// SyntheticSlow is the generator at a 10× path latency: stale reads
	// occur, are detected, and the runtime recovers.
	SyntheticSlow SyntheticOutcome
}

// SyntheticOutcome summarizes one synthetic-generator run.
type SyntheticOutcome struct {
	StaleObserved uint64 // ground truth: reloads that returned old data
	StaleFetches  uint64 // ground truth at the controller
	Detected      int    // hardware detections
	Aborts        uint64 // runtime recoveries
	Committed     uint64
	VerifyOK      bool
}

// MisspecStudy reproduces §8.4: misspeculation rates across the suite
// and the synthetic load-misspeculation generator under default and
// inflated persist-path latencies.
func MisspecStudy(threads, ops int, seed int64, progress func(string)) (MisspecResult, error) {
	return (&Runner{Progress: progress}).MisspecStudy(threads, ops, seed)
}

// MisspecStudy runs the per-benchmark grid and both synthetic-generator
// configurations as one job batch.
func (r *Runner) MisspecStudy(threads, ops int, seed int64) (MisspecResult, error) {
	names := workload.Names()
	var jobs []Job[Result]
	for _, name := range names {
		jobs = append(jobs, r.benchJob(fmt.Sprintf("misspec: %s", name),
			machine.PMEMSpec, name, params(name, threads, ops, seed)))
	}
	synDefault, jobDefault := syntheticJob(ops, seed, 20)
	synSlow, jobSlow := syntheticJob(ops, seed, 500)
	jobs = append(jobs, jobDefault, jobSlow)

	results := RunAll(jobs, r.Parallel, r.Progress)
	out := MisspecResult{PerBenchmark: map[string]uint64{}}
	if err := firstError(results); err != nil {
		return out, err
	}
	r.collect(results)
	for wi, name := range names {
		out.PerBenchmark[name] = uint64(len(results[wi].Result.MStats.Misspeculations))
	}
	out.SyntheticDefault = syntheticOutcome(synDefault, results[len(names)].Result)
	out.SyntheticSlow = syntheticOutcome(synSlow, results[len(names)+1].Result)
	return out, nil
}

// syntheticJob builds the §8.4 generator job for a machine whose LLC is
// small and low-associative enough for the conflict-eviction recipe to
// fit inside the speculation window ("Depending on the cache hierarchy,
// the program may require tens of memory accesses"). The slow
// configuration inflates the persist-path latency 25×; with the two PM
// fetches the minimal eviction recipe needs (~420 ns), nothing shorter
// can lose the race — matching the paper's observation that only an
// unrealistically long path latency produces load misspeculation. The
// generator instance is returned so the caller can read its ground-truth
// counters after the pool barrier.
func syntheticJob(ops int, seed int64, pathNS int64) (*workload.Synthetic, Job[Result]) {
	syn := workload.NewSynthetic()
	job := Job[Result]{
		Label: fmt.Sprintf("misspec: synthetic @%dns path", pathNS),
		Run: func() (Result, error) {
			p := workload.Params{Threads: 1, Ops: ops, DataSize: 64, Seed: seed}
			return Run(machine.PMEMSpec, syn, p,
				WithSmallLLC(32*1024, 2),
				WithPathLatencyNS(pathNS),
				func(c *machine.Config) { c.SpecWindow = sim.NS(pathNS * 8) })
		},
	}
	return syn, job
}

// syntheticOutcome pairs a synthetic run's Result with the generator's
// ground-truth counters.
func syntheticOutcome(syn *workload.Synthetic, res Result) SyntheticOutcome {
	return SyntheticOutcome{
		StaleObserved: syn.StaleObserved,
		StaleFetches:  res.MStats.StaleFetches,
		Detected:      len(res.MStats.Misspeculations),
		Aborts:        res.RStats.Aborts,
		Committed:     res.Committed,
		VerifyOK:      true, // Run verified already
	}
}

// AblationResult compares the §5.1.4 eviction-based detector against the
// rejected §5.1.3 fetch-based one on a write-allocate-heavy workload.
type AblationResult struct {
	Scheme         string
	Detections     int
	ActualStale    uint64 // ground truth: real stale fetches
	FalsePositives int    // detections beyond the real stale fetches
	Throughput     float64
}

// DetectionAblation reproduces the §5.1.3 false-misspeculation argument:
// under the fetch-based scheme, every store that misses in the caches is
// (falsely) flagged when its own persist arrives.
func DetectionAblation(threads, ops int, seed int64, progress func(string)) ([2]AblationResult, error) {
	return (&Runner{Progress: progress}).DetectionAblation(threads, ops, seed)
}

// DetectionAblation runs both detector schemes concurrently.
func (r *Runner) DetectionAblation(threads, ops int, seed int64) ([2]AblationResult, error) {
	var out [2]AblationResult
	schemes := []string{"eviction-based (§5.1.4)", "fetch-based (§5.1.3)"}
	var jobs []Job[Result]
	for i, fetchBased := range []bool{false, true} {
		var opts []Option
		if fetchBased {
			opts = append(opts, WithFetchBasedDetection())
		}
		// Memcached's large value store produces steady write-allocate
		// misses — the pattern of Figure 4. The window is widened so it
		// covers the fetch-to-persist gap of a write-allocate miss
		// (media read + path), which is what makes the fetch-based
		// scheme's false positives visible.
		opts = append(opts, func(c *machine.Config) { c.SpecWindow = sim.NS(1000) })
		name := schemes[i]
		jobs = append(jobs, Job[Result]{
			Label: "ablation: " + name,
			Run: func() (Result, error) {
				w, err := workload.ByName("memcached")
				if err != nil {
					return Result{}, err
				}
				return RunDetectOnly(machine.PMEMSpec, w, params("memcached", threads, ops, seed), opts...)
			},
		})
	}
	results := RunAll(jobs, r.Parallel, r.Progress)
	if err := firstError(results); err != nil {
		return out, err
	}
	r.collect(results)
	for i := range results {
		res := results[i].Result
		fp := len(res.MStats.Misspeculations) - int(res.MStats.StaleFetches)
		if fp < 0 {
			fp = 0
		}
		out[i] = AblationResult{
			Scheme:         schemes[i],
			Detections:     len(res.MStats.Misspeculations),
			ActualStale:    res.MStats.StaleFetches,
			FalsePositives: fp,
			Throughput:     res.Throughput,
		}
	}
	return out, nil
}

// runCustom is the shared runner; register selects whether the OS relay
// and recovery are wired.
func runCustom(design machine.Design, w workload.Workload, p workload.Params, mode fatomic.Mode, register bool, opts ...Option) (Result, error) {
	cfg := machine.DefaultConfig(design, p.Threads)
	for _, o := range opts {
		o(&cfg)
	}
	if syn, ok := w.(*workload.Synthetic); ok {
		syn.SetConfigure(cfg)
	}
	if mb := w.MemBytes(p); mb > cfg.MemBytes {
		cfg.MemBytes = mb
	}
	m, err := machine.New(cfg)
	if err != nil {
		return Result{}, err
	}
	var os *osint.OS
	if register {
		os = osint.New(m)
	}
	rt := fatomic.New(m, persist.ForDesign(design), os, mode)
	heap := mem.NewHeap(m.Space(), fatomic.HeapReserve(p.Threads))
	env := &workload.Env{M: m, RT: rt, Heap: heap, P: p}
	res, err := execute(m, rt, env, w, p)
	if err != nil {
		return res, err
	}
	res.Metrics = runMetrics(m, rt, os)
	res.Timeline = m.Timeline()
	// The run's outputs are all extracted; recycle the machine's PM
	// images so the next grid cell skips zeroing fresh 64 MB arrays.
	m.Release()
	return res, nil
}
