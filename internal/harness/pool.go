package harness

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// The experiment drivers enumerate their (workload × design × config)
// grids as independent Jobs and dispatch them through RunAll, so an
// `-experiment all` sweep uses every host core instead of one. Each job
// builds its own machine.Machine, OS layer, runtime and workload — runs
// share no simulation state — and results are keyed by job index, never
// by completion order, so the output is byte-identical at any worker
// count. The pool is generic over the job's result type: benchmark jobs
// produce Result, crash-campaign jobs produce CrashOutcome, boundary
// discovery produces Boundaries.

// Job is one independent experiment run producing a T.
type Job[T any] struct {
	// Label identifies the run in progress output and panic reports.
	Label string
	// Run executes the job. It must not touch state shared with other
	// jobs; it runs on an arbitrary host goroutine.
	Run func() (T, error)
}

// JobResult is the outcome of one Job: its Result, or the error (a
// failure, or a captured panic with stack) that ended it.
type JobResult[T any] struct {
	Result T
	Err    error
}

// RunAll executes jobs across `workers` host goroutines and returns their
// outcomes indexed exactly like jobs. workers ≤ 0 selects GOMAXPROCS.
// progress, if non-nil, is invoked with each job's label as it starts;
// calls are serialized but their order depends on scheduling (results do
// not). A panic inside a job is captured as that job's error instead of
// tearing down the whole sweep.
func RunAll[T any](jobs []Job[T], workers int, progress func(string)) []JobResult[T] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]JobResult[T], len(jobs))
	if workers <= 1 {
		for i := range jobs {
			if progress != nil {
				progress(jobs[i].Label)
			}
			out[i] = runJob(&jobs[i])
		}
		return out
	}
	var mu sync.Mutex
	report := func(s string) {
		if progress == nil {
			return
		}
		mu.Lock()
		progress(s)
		mu.Unlock()
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				report(jobs[i].Label)
				out[i] = runJob(&jobs[i])
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// runJob runs one job, converting a panic into its error.
func runJob[T any](j *Job[T]) (jr JobResult[T]) {
	defer func() {
		if r := recover(); r != nil {
			jr.Err = fmt.Errorf("harness: job %q panicked: %v\n%s", j.Label, r, debug.Stack())
		}
	}()
	jr.Result, jr.Err = j.Run()
	return jr
}

// firstError returns the error of the lowest-indexed failed job, so the
// reported failure is deterministic regardless of completion order.
func firstError[T any](rs []JobResult[T]) error {
	for i := range rs {
		if rs[i].Err != nil {
			return rs[i].Err
		}
	}
	return nil
}

// Pool is the long-lived counterpart to RunAll for services that submit
// jobs continuously instead of in one batch: a fixed set of host workers
// pulling from an unbuffered channel. Submission blocks until a worker
// is free, which is the pool's backpressure signal — callers that need a
// bounded queue (the serve layer) put their own admission control in
// front. Jobs run through the same panic-capturing runJob as RunAll.
type Pool[T any] struct {
	tasks chan poolTask[T]
	wg    sync.WaitGroup
}

type poolTask[T any] struct {
	job Job[T]
	// done receives the job's outcome on the worker goroutine.
	done func(JobResult[T])
}

// NewPool starts a pool of `workers` host goroutines (≤ 0: GOMAXPROCS).
func NewPool[T any](workers int) *Pool[T] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool[T]{tasks: make(chan poolTask[T])}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				t.done(runJob(&t.job))
			}
		}()
	}
	return p
}

// Submit hands one job to the pool, blocking until a worker accepts it.
// done is invoked on the worker goroutine with the job's outcome (panics
// captured as errors, like RunAll); it must be safe to call from any
// goroutine. Submit must not be called after Close.
func (p *Pool[T]) Submit(job Job[T], done func(JobResult[T])) {
	p.tasks <- poolTask[T]{job: job, done: done}
}

// Close stops the workers after the already-accepted jobs finish and
// waits for them to exit. The pool must not be used afterwards.
func (p *Pool[T]) Close() {
	close(p.tasks)
	p.wg.Wait()
}
