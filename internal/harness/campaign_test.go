package harness

import (
	"encoding/json"
	"testing"

	"pmemspec/internal/machine"
	"pmemspec/internal/workload"
)

// smallCampaign is the shared test configuration: all four designs, one
// workload, a coarse uniform grid plus discovered persist boundaries,
// and misspeculation injection on both chains.
func smallCampaign() CampaignConfig {
	return CampaignConfig{
		Workloads:      []string{"arrayswap"},
		Params:         workload.Params{Threads: 2, Ops: 15, DataSize: 64, Seed: 7},
		Points:         3,
		MaxNS:          120_000,
		Boundaries:     true,
		BoundaryBudget: 4,
		MaxPoints:      10,
		Inject:         InjectionPlan{StalePeriodNS: 3_000, OOOPeriodNS: 5_000, Count: 6},
	}
}

// TestCampaignInjectionAllDesigns is the headline acceptance check: a
// campaign with injected misspeculations across all four designs
// completes with zero invariant violations — the runtime treats every
// synthetic signal as a virtual power failure and loses no committed
// work.
func TestCampaignInjectionAllDesigns(t *testing.T) {
	rep, err := RunCampaign(smallCampaign())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 || rep.Failures != 0 {
		for _, tr := range rep.Trials {
			if tr.Verdict != VerdictOK {
				t.Errorf("%s/%s %s: %s: %s", tr.Design, tr.Workload, tr.Point, tr.Verdict, tr.Detail)
			}
		}
		t.Fatalf("campaign: %d violations, %d failures", rep.Violations, rep.Failures)
	}
	cells := rep.Cells()
	if len(cells) != len(machine.Designs) {
		t.Fatalf("got %d cells, want %d", len(cells), len(machine.Designs))
	}
	var injected, signals uint64
	boundaryTrials := 0
	for _, tr := range rep.Trials {
		injected += tr.InjectedStale + tr.InjectedOOO
		signals += tr.LoadSignals + tr.StoreSignals
		if tr.Point != "" && tr.Point != "no-crash" && tr.Point[0] != 'u' {
			boundaryTrials++
		}
	}
	if injected == 0 {
		t.Error("injector raised no misspeculation events")
	}
	if signals == 0 {
		t.Error("no injected event was ever relayed to an in-FASE thread")
	}
	if boundaryTrials == 0 {
		t.Error("no boundary-aligned crash point survived merging")
	}
}

// TestCampaignParallelDeterminism is the byte-identical-report check:
// the same campaign on a 1-wide and an 8-wide pool must serialize to
// exactly the same JSON.
func TestCampaignParallelDeterminism(t *testing.T) {
	cfg := smallCampaign()
	// Trim to two designs: this test is about pool scheduling, not
	// design coverage.
	cfg.Designs = []machine.Design{machine.IntelX86, machine.PMEMSpec}
	r1, err := (&Runner{Parallel: 1}).RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := (&Runner{Parallel: 8}).RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := json.Marshal(r8)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b8) {
		t.Fatalf("reports differ between -parallel 1 and -parallel 8:\n%s\n---\n%s", b1, b8)
	}
}

// TestCampaignRecordsDiscoveryFailure: a cell whose boundary discovery
// fails must fall back to the uniform grid and record an error row, not
// abort the campaign.
func TestCampaignRecordsDiscoveryFailure(t *testing.T) {
	cfg := CampaignConfig{
		Designs:   []machine.Design{machine.PMEMSpec},
		Workloads: []string{"arrayswap"},
		Params:    workload.Params{Threads: 2, Ops: 5, DataSize: 64, Seed: 1},
		Points:    2,
		MaxNS:     50_000,
	}
	rep, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Fatalf("clean campaign reported %d failures", rep.Failures)
	}
	if got := len(rep.Trials); got != 2 {
		t.Fatalf("got %d trials, want 2 uniform points", got)
	}
}
