package harness

import (
	"pmemspec/internal/core"
	"pmemspec/internal/fatomic"
	"pmemspec/internal/machine"
	"pmemspec/internal/mem"
	"pmemspec/internal/osint"
	"pmemspec/internal/sim"
)

// InjectionPlan synthesizes misspeculation interrupts through the §6.1
// OS relay at fixed simulated-time rates, independent of the design's
// own detection hardware. Injected events exercise the signal → abort →
// rollback → re-execute path (§6.1.2) under every design: the runtime
// must treat each as a virtual power failure and lose no committed work.
//
// The zero value injects nothing.
type InjectionPlan struct {
	// StalePeriodNS raises a stale-load event (core.LoadMisspec) every
	// period nanoseconds of simulated time; 0 disables.
	StalePeriodNS int64 `json:"stale_period_ns,omitempty"`
	// OOOPeriodNS raises an out-of-order-persist event
	// (core.StoreMisspec) every period nanoseconds; 0 disables.
	OOOPeriodNS int64 `json:"ooo_period_ns,omitempty"`
	// OffsetNS delays the first event of each chain; 0 means one period.
	OffsetNS int64 `json:"offset_ns,omitempty"`
	// Count caps the number of events per chain; 0 means unbounded
	// (chains stop when the workload finishes).
	Count int `json:"count,omitempty"`
	// SiteStride spaces successive injection addresses within the
	// workload heap, in bytes; 0 means 7 cache blocks (scatters sites
	// across structures without aliasing a single set).
	SiteStride uint64 `json:"site_stride,omitempty"`
}

// InjectionStats counts what an armed plan actually raised.
type InjectionStats struct {
	StaleLoads  uint64 // injected core.LoadMisspec events
	OOOPersists uint64 // injected core.StoreMisspec events
	Unclaimed   uint64 // events whose address matched no registered runtime
}

// Enabled reports whether the plan injects anything.
func (pl InjectionPlan) Enabled() bool {
	return pl.StalePeriodNS > 0 || pl.OOOPeriodNS > 0
}

// arm schedules the plan's event chains on the machine's kernel. Each
// chain re-schedules itself only while active() holds (the kernel runs
// until its event queue drains, so an unconditional chain would keep a
// finished run alive forever) and its Count budget remains. Sites walk
// the workload heap — the region the runtime registers with the OS — so
// events are claimed and relayed; threads outside a FASE simply ignore
// the signal, mirroring a benign mis-detection.
func (pl InjectionPlan) arm(m *machine.Machine, os *osint.OS, threads int, stats *InjectionStats, active func() bool) {
	if !pl.Enabled() {
		return
	}
	stride := pl.SiteStride
	if stride == 0 {
		stride = 7 * mem.BlockSize
	}
	heapBase := m.Space().Base() + mem.Addr(fatomic.HeapReserve(threads))
	span := m.Space().Size() - fatomic.HeapReserve(threads)
	if span < mem.BlockSize {
		return
	}
	site := func(i uint64) mem.Addr {
		return mem.BlockAlign(heapBase + mem.Addr((i*stride)%span))
	}
	chain := func(periodNS int64, kind core.Kind, fired *uint64) {
		if periodNS <= 0 {
			return
		}
		period := sim.NS(periodNS)
		first := sim.NS(pl.OffsetNS)
		if pl.OffsetNS <= 0 {
			first = period
		}
		k := m.Kernel()
		var fire func()
		var seq uint64
		fire = func() {
			if !active() || (pl.Count > 0 && seq >= uint64(pl.Count)) {
				return
			}
			ms := core.Misspeculation{Kind: kind, Addr: site(seq), At: k.Now()}
			if kind == core.StoreMisspec {
				// Distinct IDs, as a real inter-thread persist-order
				// violation would carry (§5.2).
				ms.SeenID = seq + 1
				ms.NewID = seq + 2
			}
			seq++
			*fired++
			if !os.Inject(ms) {
				stats.Unclaimed++
			}
			k.Schedule(k.Now()+period, fire)
		}
		k.Schedule(first, fire)
	}
	chain(pl.StalePeriodNS, core.LoadMisspec, &stats.StaleLoads)
	chain(pl.OOOPeriodNS, core.StoreMisspec, &stats.OOOPersists)
}
