package harness

import (
	"fmt"
	"io"
	"sort"

	"pmemspec/internal/machine"
	"pmemspec/internal/stats"
)

// PrintFig9 writes the Figure 9 table: one row per benchmark, one column
// per design, throughput normalized to IntelX86, plus the geomean row.
func PrintFig9(w io.Writer, title string, rows []Fig9Row) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-12s", "benchmark")
	for _, d := range machine.Designs {
		fmt.Fprintf(w, "%12s", d)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s", r.Workload)
		for _, d := range machine.Designs {
			fmt.Fprintf(w, "%12.2f", r.Normalized[d])
		}
		fmt.Fprintln(w)
	}
	g := Geomeans(rows)
	fmt.Fprintf(w, "%-12s", "geomean")
	for _, d := range machine.Designs {
		fmt.Fprintf(w, "%12.2f", g[d])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "PMEM-Spec vs IntelX86: %s | PMEM-Spec vs HOPS: %s (paper: 1.27x and 1.11x at 8 cores)\n\n",
		stats.Speedup(g[machine.PMEMSpec]),
		stats.Speedup(g[machine.PMEMSpec]/g[machine.HOPS]))
}

// PrintFig10 writes the Figure 10 panels for each core count.
func PrintFig10(w io.Writer, panels map[int][]Fig9Row) {
	var cores []int
	for c := range panels {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	for _, c := range cores {
		PrintFig9(w, fmt.Sprintf("Figure 10 — %d cores (normalized to IntelX86)", c), panels[c])
	}
}

// PrintFig11 writes the Figure 11 series: average throughput per
// speculation-buffer size, normalized to the 16-entry configuration.
func PrintFig11(w io.Writer, pts []Fig11Point) {
	fmt.Fprintln(w, "Figure 11 — speculation buffer sizes (PMEM-Spec, 8 cores, normalized to 16 entries)")
	fmt.Fprintf(w, "%-10s%14s%12s\n", "entries", "avg norm", "overflows")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10d%14.3f%12d\n", p.Entries, p.AvgNorm, p.Overflows)
	}
	if len(pts) > 0 {
		fmt.Fprintf(w, "size-1 degradation vs overflow-free: %.1f%% (paper: 12.8%%)\n\n",
			(1-pts[0].AvgNorm)*100)
	}
}

// PrintFig12 writes the Figure 12 series: geomean throughput vs persist-
// path latency for HOPS and PMEM-Spec, normalized to IntelX86.
func PrintFig12(w io.Writer, pts []Fig12Point) {
	fmt.Fprintln(w, "Figure 12 — persist-path latency sweep (geomean, normalized to IntelX86)")
	fmt.Fprintf(w, "%-12s%12s%12s\n", "latency", "HOPS", "PMEM-Spec")
	for _, p := range pts {
		fmt.Fprintf(w, "%-12s%12.2f%12.2f\n", fmt.Sprintf("%dns", p.LatencyNS),
			p.Geomean[machine.HOPS], p.Geomean[machine.PMEMSpec])
	}
	fmt.Fprintln(w)
}

// PrintMisspec writes the §8.4 misspeculation study.
func PrintMisspec(w io.Writer, r MisspecResult) {
	fmt.Fprintln(w, "§8.4 — misspeculation rates")
	var names []string
	for n := range r.PerBenchmark {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-12s %d misspeculations\n", n, r.PerBenchmark[n])
	}
	print := func(label string, o SyntheticOutcome) {
		fmt.Fprintf(w, "synthetic %-18s stale-observed=%d stale-fetches=%d detected=%d aborts=%d committed=%d\n",
			label, o.StaleObserved, o.StaleFetches, o.Detected, o.Aborts, o.Committed)
	}
	print("(20ns path):", r.SyntheticDefault)
	print("(25x path, tiny LLC):", r.SyntheticSlow)
	fmt.Fprintln(w)
}

// PrintAblation writes the §5.1.3-vs-§5.1.4 detection comparison.
func PrintAblation(w io.Writer, r [2]AblationResult) {
	fmt.Fprintln(w, "Detection ablation — §5.1.4 eviction-based vs §5.1.3 fetch-based")
	for _, a := range r {
		fmt.Fprintf(w, "%-26s detections=%-6d actual-stale=%-4d false-positives=%-6d throughput=%.0f/s\n",
			a.Scheme, a.Detections, a.ActualStale, a.FalsePositives, a.Throughput)
	}
	fmt.Fprintln(w)
}
