package harness

import (
	"bytes"
	"testing"

	"pmemspec/internal/machine"
	"pmemspec/internal/metrics"
)

// metricsGrid runs every design over one small workload at the given
// pool width and returns the serialized metrics grid plus the grid
// itself.
func metricsGrid(t *testing.T, parallel int) ([]byte, *metrics.Grid) {
	t.Helper()
	r := &Runner{
		Parallel: parallel,
		Metrics:  metrics.NewGrid(),
		Timeline: func(d machine.Design, name string) bool { return d == machine.PMEMSpec },
	}
	var jobs []Job[Result]
	for _, d := range machine.AllDesigns {
		jobs = append(jobs, r.benchJob("metrics: "+d.String(), d, "queue", params("queue", 2, 30, 7)))
	}
	results := RunAll(jobs, r.Parallel, r.Progress)
	if err := firstError(results); err != nil {
		t.Fatal(err)
	}
	r.collect(results)
	var buf bytes.Buffer
	if err := r.Metrics.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if len(r.Timelines) != 1 || r.Timelines[0].Name != "PMEM-Spec/queue" {
		t.Fatalf("timeline predicate selected %d timelines (%v), want PMEM-Spec/queue only", len(r.Timelines), r.Timelines)
	}
	if r.Timelines[0].TL.Len() == 0 {
		t.Fatal("selected timeline recorded no events")
	}
	return buf.Bytes(), r.Metrics
}

// TestMetricsParallelDeterminism is the tentpole acceptance check: the
// metrics grid must serialize byte-identically whether the runs execute
// on one worker or eight, and every (design, workload) cell must carry
// nonzero persist-path activity (WPQ admissions everywhere; speculation
// buffer and persist-path messages under PMEM-Spec, the only design
// with those structures).
func TestMetricsParallelDeterminism(t *testing.T) {
	b1, _ := metricsGrid(t, 1)
	b8, grid := metricsGrid(t, 8)
	if !bytes.Equal(b1, b8) {
		t.Fatalf("metrics grid differs between -parallel 1 and -parallel 8:\n%s\nvs\n%s", b1, b8)
	}
	cells := grid.Cells()
	if len(cells) != len(machine.AllDesigns) {
		t.Fatalf("got %d cells, want %d", len(cells), len(machine.AllDesigns))
	}
	nonzero := func(cell metrics.GridCell, component, name string) {
		t.Helper()
		m, ok := cell.Metrics.Get(component, name)
		if !ok || (m.Value == 0 && m.Count == 0) {
			t.Errorf("cell %s/%s: %s.%s is zero or missing", cell.Design, cell.Workload, component, name)
		}
	}
	for _, cell := range cells {
		nonzero(cell, "machine", "stores")
		nonzero(cell, "wpq", "accepts")
		nonzero(cell, "wpq", "occupancy")
		nonzero(cell, "fatomic", "fases")
		if cell.Design == machine.PMEMSpec.String() {
			nonzero(cell, "specbuf", "persists")
			nonzero(cell, "ppath", "sent")
			nonzero(cell, "ppath", "delivered")
		}
	}
}

// TestTimelineTraceDeterministic renders the recorded PMEM-Spec timeline
// as a Chrome trace twice (from two independent runs) and requires
// byte-identical output.
func TestTimelineTraceDeterministic(t *testing.T) {
	render := func() []byte {
		r := &Runner{Metrics: metrics.NewGrid(),
			Timeline: func(d machine.Design, name string) bool { return true }}
		jobs := []Job[Result]{r.benchJob("tl", machine.PMEMSpec, "queue", params("queue", 2, 30, 7))}
		results := RunAll(jobs, 1, nil)
		if err := firstError(results); err != nil {
			t.Fatal(err)
		}
		r.collect(results)
		var buf bytes.Buffer
		if err := metrics.WriteTrace(&buf, r.Timelines); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("trace output differs across identical runs")
	}
}

// TestCrashTrialMetrics: a crash trial publishes its snapshot even when
// the run is interrupted by the power failure.
func TestCrashTrialMetrics(t *testing.T) {
	r := &Runner{Metrics: metrics.NewGrid()}
	outs := r.RunTrials([]TrialSpec{{
		Design:   machine.PMEMSpec,
		Workload: "queue",
		Params:   params("queue", 2, 40, 7),
		Point:    CrashPoint{AtNS: 4000, Label: "mid"},
	}})
	if outs[0].Err != nil {
		t.Fatal(outs[0].Err)
	}
	if len(outs[0].Metrics) == 0 {
		t.Fatal("crash trial carried no metrics snapshot")
	}
	cell := r.Metrics.Cell(machine.PMEMSpec.String(), "queue")
	if m, ok := cell.Get("machine", "stores"); !ok || m.Value == 0 {
		t.Fatal("crash-trial grid cell missing machine.stores")
	}
}
