// Package harness runs the paper's experiments: it assembles a machine,
// OS layer, failure-atomic runtime and workload, executes the measured
// multithreaded kernel (setup excluded, as in §8.1), and collects
// throughput and event statistics. The experiment drivers in this
// package regenerate every evaluation figure: Figure 9 (8-core
// comparison), Figure 10 (16/32/64 cores), Figure 11 (speculation-buffer
// sizes), Figure 12 (persist-path latencies), the §8.4 misspeculation
// study, and the §5.1.3-vs-§5.1.4 detection ablation.
package harness

import (
	"fmt"

	"pmemspec/internal/fatomic"
	"pmemspec/internal/machine"
	"pmemspec/internal/metrics"
	"pmemspec/internal/osint"
	"pmemspec/internal/sim"
	"pmemspec/internal/workload"
)

// Result is the outcome of one (design, workload) run.
type Result struct {
	Design     machine.Design
	Workload   string
	Threads    int
	Committed  uint64   // committed FASEs across all threads
	KernelTime sim.Time // measured multithreaded phase makespan
	Throughput float64  // committed FASEs per simulated second
	MStats     machine.Stats
	RStats     fatomic.Stats
	// Metrics is the run's merged observability snapshot (machine
	// components + runtime + OS relay). Timeline is non-nil only when
	// the run was configured with WithTimeline. Both are excluded from
	// the Result's JSON: the grid/trace exports serialize them.
	Metrics  metrics.Snapshot  `json:"-"`
	Timeline *metrics.Timeline `json:"-"`
}

// Option tweaks the machine configuration before a run.
type Option func(*machine.Config)

// WithSpecBufEntries overrides the speculation-buffer capacity (Fig 11).
func WithSpecBufEntries(n int) Option {
	return func(c *machine.Config) { c.SpecBufEntries = n }
}

// WithPathLatencyNS overrides the persist-path latency (Fig 12, §8.4).
func WithPathLatencyNS(ns int64) Option {
	return func(c *machine.Config) { c.Path.Latency = sim.NS(ns) }
}

// WithFetchBasedDetection selects the rejected §5.1.3 scheme (ablation).
func WithFetchBasedDetection() Option {
	return func(c *machine.Config) { c.FetchBasedDetection = true }
}

// WithSmallLLC shrinks the LLC (misspeculation study: the §8.4 recipe
// needs the conflict-eviction sequence to fit in the speculation
// window).
func WithSmallLLC(bytes, ways int) Option {
	return func(c *machine.Config) {
		c.LLCBytes = bytes
		c.LLCWays = ways
	}
}

// WithTimeline enables the machine's event-timeline recorder; the run's
// Result then carries the recorded timeline.
func WithTimeline() Option {
	return func(c *machine.Config) { c.Timeline = true }
}

// WithCancel wires cooperative cancellation into the run: cancel is
// polled from a kernel watcher event every ~50 µs of simulated time,
// and when it reports true the run stops and returns
// machine.ErrCanceled. The callback may read cross-goroutine state
// (an atomic flag, a context's Err); the serve layer uses this for
// per-job timeouts and client cancellation. Uncancelled runs produce
// byte-identical results with or without the option.
func WithCancel(cancel func() bool) Option {
	return func(c *machine.Config) { c.Cancel = cancel }
}

// Run executes workload w on a fresh machine of the given design with
// lazy misspeculation recovery.
func Run(design machine.Design, w workload.Workload, p workload.Params, opts ...Option) (Result, error) {
	return run(design, w, p, fatomic.Lazy, opts...)
}

// RunWithMode is Run with an explicit recovery mode (lazy vs eager).
func RunWithMode(design machine.Design, w workload.Workload, p workload.Params, mode fatomic.Mode, opts ...Option) (Result, error) {
	return run(design, w, p, mode, opts...)
}

// execute spawns the workers, runs setup + the measured kernel, and
// verifies the workload invariants on the coherent image.
func execute(m *machine.Machine, rt *fatomic.Runtime, env *workload.Env, w workload.Workload, p workload.Params) (Result, error) {
	barrier := sim.NewBarrier(p.Threads)
	starts := make([]sim.Time, p.Threads)
	ends := make([]sim.Time, p.Threads)
	for tid := 0; tid < p.Threads; tid++ {
		tid := tid
		m.Spawn(fmt.Sprintf("worker%d", tid), func(t *machine.Thread) {
			rt.WarmLog(t) // log pre-fault belongs to initialization
			if tid == 0 {
				w.Setup(env, t)
			}
			barrier.Wait(t.Sim())
			starts[tid] = t.Clock()
			w.Run(env, t, tid)
			ends[tid] = t.Clock()
		})
	}
	if err := m.Run(); err != nil {
		return Result{}, fmt.Errorf("harness: %s/%s: %w", m.Config().Design, w.Name(), err)
	}

	start := starts[0]
	var end sim.Time
	for _, e := range ends {
		if e > end {
			end = e
		}
	}
	res := Result{
		Design:     m.Config().Design,
		Workload:   w.Name(),
		Threads:    p.Threads,
		Committed:  rt.Stats.FASEs,
		KernelTime: end - start,
		MStats:     m.Stats(),
		RStats:     rt.Stats,
	}
	if res.KernelTime > 0 {
		res.Throughput = float64(res.Committed) / res.KernelTime.Seconds()
	}
	if err := w.Verify(m.Space().Arch, rt.Stats.FASEs); err != nil {
		return res, fmt.Errorf("harness: %s/%s verification: %w", m.Config().Design, w.Name(), err)
	}
	return res, nil
}

// runMetrics assembles one run's merged observability snapshot: the
// machine's component publish (memoized in the machine) plus the
// failure-atomic runtime's counters and, when wired, the OS relay's.
func runMetrics(m *machine.Machine, rt *fatomic.Runtime, os *osint.OS) metrics.Snapshot {
	reg := metrics.NewRegistry()
	publishRuntime(reg, rt.Stats)
	if os != nil {
		os.Publish(reg)
	}
	return metrics.Merge(m.MetricsSnapshot(), reg.Snapshot())
}

// publishRuntime copies the runtime's end-of-run counters into the
// registry under component "fatomic".
func publishRuntime(r *metrics.Registry, s fatomic.Stats) {
	r.Counter("fatomic", "fases").Add(s.FASEs)
	r.Counter("fatomic", "aborts").Add(s.Aborts)
	r.Counter("fatomic", "faults_suppressed").Add(s.FaultsSuppressed)
	r.Counter("fatomic", "misspec_signals").Add(s.MisspecSignals)
	r.Counter("fatomic", "load_signals").Add(s.LoadSignals)
	r.Counter("fatomic", "store_signals").Add(s.StoreSignals)
	r.Counter("fatomic", "stage_retries").Add(s.StageRetries)
	r.Counter("fatomic", "undone_entries").Add(s.UndoneEntries)
}

// params builds the paper-style parameters for a benchmark: 64 B items,
// 1024 B for memcached (§8.1).
func params(name string, threads, ops int, seed int64) workload.Params {
	p := workload.Params{Threads: threads, Ops: ops, DataSize: 64, Seed: seed}
	if name == "memcached" {
		p.DataSize = 1024
	}
	return p
}
