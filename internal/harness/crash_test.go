package harness

import (
	"testing"

	"pmemspec/internal/machine"
	"pmemspec/internal/workload"
)

// TestCrashSweepAllDesigns is the cross-design crash-consistency
// integration: inject power failures at a sweep of points through real
// workload runs, recover, and verify structural invariants on the
// recovered persisted image. Any violation means a design's ordering
// semantics or the recovery protocol is broken.
func TestCrashSweepAllDesigns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	cases := []string{"arrayswap", "queue", "tpcc-mix"}
	for _, d := range machine.Designs {
		d := d
		for _, name := range cases {
			name := name
			t.Run(d.String()+"/"+name, func(t *testing.T) {
				p := workload.Params{Threads: 2, Ops: 60, DataSize: 64, Seed: 9}
				outs, err := CrashSweep(d, name, p, 8, 300_000)
				if err != nil {
					t.Fatal(err)
				}
				crashed := 0
				for _, o := range outs {
					if o.Crashed {
						crashed++
					}
					if o.VerifyErr != nil {
						t.Errorf("crash@%dns: %v", o.CrashAtNS, o.VerifyErr)
					}
				}
				if crashed == 0 {
					t.Error("no crash point landed mid-run; widen the sweep")
				}
			})
		}
	}
}

// TestCrashSweepRBTree gives the trickiest structure (rotations inside
// FASEs) its own deeper sweep on the paper's design.
func TestCrashSweepRBTree(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	// Scale 256 keeps setup short; the long kernel (300 ops) gives the
	// sweep a wide window of in-flight FASEs to hit.
	p := workload.Params{Threads: 2, Ops: 300, DataSize: 64, Scale: 256, Seed: 4}
	outs, err := CrashSweep(machine.PMEMSpec, "rbtree", p, 16, 900_000)
	if err != nil {
		t.Fatal(err)
	}
	rolled := 0
	for _, o := range outs {
		if o.VerifyErr != nil {
			t.Errorf("crash@%dns: %v", o.CrashAtNS, o.VerifyErr)
		}
		rolled += o.Recovery.ThreadsRolledBack
	}
	if rolled == 0 {
		t.Error("no FASE was ever caught in flight; sweep too coarse to be meaningful")
	}
}

// TestRunWithCrashAfterCompletion: a crash point past the end of the run
// must verify cleanly with nothing to roll back.
func TestRunWithCrashAfterCompletion(t *testing.T) {
	w, _ := workload.ByName("arrayswap")
	p := workload.Params{Threads: 1, Ops: 5, DataSize: 64, Seed: 1}
	o, err := RunWithCrash(machine.PMEMSpec, w, p, 1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if o.Crashed {
		t.Error("run did not finish before the distant crash point")
	}
	if o.VerifyErr != nil {
		t.Errorf("verify: %v", o.VerifyErr)
	}
	if o.Recovery.ThreadsRolledBack != 0 {
		t.Error("completed run had in-flight FASEs")
	}
}
