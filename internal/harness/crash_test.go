package harness

import (
	"strings"
	"testing"

	"pmemspec/internal/fatomic"
	"pmemspec/internal/machine"
	"pmemspec/internal/mem"
	"pmemspec/internal/workload"
)

// TestCrashSweepAllDesigns is the cross-design crash-consistency
// integration: inject power failures at a sweep of points through real
// workload runs, recover, and verify structural invariants on the
// recovered persisted image. Any violation means a design's ordering
// semantics or the recovery protocol is broken.
func TestCrashSweepAllDesigns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	cases := []string{"arrayswap", "queue", "tpcc-mix"}
	for _, d := range machine.Designs {
		d := d
		for _, name := range cases {
			name := name
			t.Run(d.String()+"/"+name, func(t *testing.T) {
				p := workload.Params{Threads: 2, Ops: 60, DataSize: 64, Seed: 9}
				outs, err := CrashSweep(d, name, p, 8, 300_000)
				if err != nil {
					t.Fatal(err)
				}
				crashed := 0
				for _, o := range outs {
					if o.Crashed {
						crashed++
					}
					if o.Err != nil {
						t.Errorf("crash@%dns failed to run: %v", o.CrashAtNS, o.Err)
					}
					if o.VerifyErr != nil {
						t.Errorf("crash@%dns: %v", o.CrashAtNS, o.VerifyErr)
					}
				}
				if crashed == 0 {
					t.Error("no crash point landed mid-run; widen the sweep")
				}
			})
		}
	}
}

// TestCrashSweepRBTree gives the trickiest structure (rotations inside
// FASEs) its own deeper sweep on the paper's design.
func TestCrashSweepRBTree(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second sweep")
	}
	// Scale 256 keeps setup short; the long kernel (300 ops) gives the
	// sweep a wide window of in-flight FASEs to hit.
	p := workload.Params{Threads: 2, Ops: 300, DataSize: 64, Scale: 256, Seed: 4}
	outs, err := CrashSweep(machine.PMEMSpec, "rbtree", p, 16, 900_000)
	if err != nil {
		t.Fatal(err)
	}
	rolled := 0
	for _, o := range outs {
		if o.VerifyErr != nil {
			t.Errorf("crash@%dns: %v", o.CrashAtNS, o.VerifyErr)
		}
		rolled += o.Recovery.ThreadsRolledBack
	}
	if rolled == 0 {
		t.Error("no FASE was ever caught in flight; sweep too coarse to be meaningful")
	}
}

// TestRunWithCrashAfterCompletion: a crash point past the end of the run
// must verify cleanly with nothing to roll back.
func TestRunWithCrashAfterCompletion(t *testing.T) {
	w, _ := workload.ByName("arrayswap")
	p := workload.Params{Threads: 1, Ops: 5, DataSize: 64, Seed: 1}
	o, err := RunWithCrash(machine.PMEMSpec, w, p, 1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if o.Crashed {
		t.Error("run did not finish before the distant crash point")
	}
	if o.VerifyErr != nil {
		t.Errorf("verify: %v", o.VerifyErr)
	}
	if o.Recovery.ThreadsRolledBack != 0 {
		t.Error("completed run had in-flight FASEs")
	}
}

// TestRunWithCrashDuringSetup: a crash inside single-threaded setup must
// take the log-protocol-only branch — no invariant check on structures
// that may not exist yet, and nothing reported as recovered.
func TestRunWithCrashDuringSetup(t *testing.T) {
	w, _ := workload.ByName("rbtree")
	p := workload.Params{Threads: 2, Ops: 50, DataSize: 64, Scale: 4096, Seed: 3}
	o, err := RunWithCrash(machine.PMEMSpec, w, p, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Crashed {
		t.Fatal("crash at 50ns did not interrupt setup")
	}
	if o.VerifyErr != nil {
		t.Errorf("setup-crash branch must only check the log protocol: %v", o.VerifyErr)
	}
	if o.Recovery != (fatomic.RecoveryReport{}) {
		t.Error("setup-crash branch must not report recovery work")
	}
}

// panicVerifyWorkload is a stub whose Verify dereferences a wild pointer
// (modeled as a panic) — the checker must convert that into an error.
type panicVerifyWorkload struct{}

func (panicVerifyWorkload) Name() string                                     { return "panic-verify" }
func (panicVerifyWorkload) Description() string                              { return "test stub" }
func (panicVerifyWorkload) MemBytes(p workload.Params) uint64                { return 0 }
func (panicVerifyWorkload) Setup(e *workload.Env, th *machine.Thread)        {}
func (panicVerifyWorkload) Run(e *workload.Env, th *machine.Thread, tid int) {}
func (panicVerifyWorkload) Verify(img *mem.Image, completedOps uint64) error {
	panic("wild pointer at 0xdead")
}

// TestSafeVerifyPanic: a panicking Verify is a consistency violation,
// not a harness crash.
func TestSafeVerifyPanic(t *testing.T) {
	err := safeVerify(panicVerifyWorkload{}, nil, 0)
	if err == nil {
		t.Fatal("panic in Verify was not converted to an error")
	}
	if !strings.Contains(err.Error(), "0xdead") {
		t.Errorf("converted error lost the panic value: %v", err)
	}
}

// TestUniformPoints: integer division must not produce zero or duplicate
// crash points when maxNS < points, and invalid spans are rejected.
func TestUniformPoints(t *testing.T) {
	pts, err := UniformPoints(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 || len(pts) > 4 {
		t.Fatalf("10 points over 4ns yielded %d points, want 1..4", len(pts))
	}
	last := int64(0)
	for _, p := range pts {
		if p.AtNS <= last {
			t.Errorf("point %+v not strictly increasing after %d", p, last)
		}
		last = p.AtNS
	}
	if pts[len(pts)-1].AtNS != 4 {
		t.Errorf("sweep must keep its full span, last point %d want 4", pts[len(pts)-1].AtNS)
	}
	if _, err := UniformPoints(0, 100); err == nil {
		t.Error("zero points accepted")
	}
	if _, err := UniformPoints(4, 0); err == nil {
		t.Error("non-positive span accepted")
	}
}

// TestRunTrialsRecordsErrors: one broken trial must be recorded as a
// failed outcome, not abort the batch (the sweep keeps sweeping).
func TestRunTrialsRecordsErrors(t *testing.T) {
	specs := []TrialSpec{
		{Design: machine.PMEMSpec, Workload: "no-such-workload",
			Params: workload.Params{Threads: 1, Ops: 2, DataSize: 64, Seed: 1},
			Point:  CrashPoint{AtNS: 1000, Label: "uniform@1000ns"}},
		{Design: machine.PMEMSpec, Workload: "arrayswap",
			Params: workload.Params{Threads: 1, Ops: 2, DataSize: 64, Seed: 1},
			Point:  NoCrash},
	}
	outs := (&Runner{Parallel: 1}).RunTrials(specs)
	if len(outs) != 2 {
		t.Fatalf("got %d outcomes, want 2", len(outs))
	}
	if outs[0].Err == nil {
		t.Error("broken trial did not record its error")
	}
	if outs[0].Workload != "no-such-workload" || outs[0].Label != "uniform@1000ns" {
		t.Errorf("failed outcome lost its identity: %+v", outs[0])
	}
	if outs[1].Err != nil || outs[1].VerifyErr != nil {
		t.Errorf("healthy trial after a broken one: err=%v verify=%v", outs[1].Err, outs[1].VerifyErr)
	}
}

// TestDiscoverBoundaries: an instrumented run must observe both boundary
// families, and Points must label and budget them deterministically.
func TestDiscoverBoundaries(t *testing.T) {
	spec := TrialSpec{Design: machine.PMEMSpec, Workload: "arrayswap",
		Params: workload.Params{Threads: 2, Ops: 10, DataSize: 64, Seed: 1}}
	b, err := DiscoverBoundaries(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.DrainNS) == 0 {
		t.Error("no durability-barrier drains observed")
	}
	if len(b.AdmitNS) == 0 {
		t.Error("no WPQ admissions observed")
	}
	pts := b.Points(6)
	if len(pts) == 0 || len(pts) > 3*6 {
		t.Fatalf("budget 6 instants yielded %d points, want 1..18", len(pts))
	}
	var drainLbl, admitLbl bool
	for _, p := range pts {
		if p.AtNS <= 0 {
			t.Errorf("non-positive boundary point %+v", p)
		}
		if strings.Contains(p.Label, "drain@") {
			drainLbl = true
		}
		if strings.Contains(p.Label, "admit@") {
			admitLbl = true
		}
	}
	if !drainLbl || !admitLbl {
		t.Errorf("points missing a boundary family: drain=%v admit=%v", drainLbl, admitLbl)
	}
	again, err := DiscoverBoundaries(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.DrainNS) != len(b.DrainNS) || len(again.AdmitNS) != len(b.AdmitNS) {
		t.Error("boundary discovery is not deterministic")
	}
}

// TestMergePoints: merging dedupes by instant and is order-independent.
func TestMergePoints(t *testing.T) {
	a := []CrashPoint{{10, "uniform@10ns"}, {20, "uniform@20ns"}}
	b := []CrashPoint{{10, "drain@10ns"}, {15, "admit@15ns"}}
	m1 := MergePoints(a, b)
	m2 := MergePoints(b, a)
	if len(m1) != 3 {
		t.Fatalf("got %d merged points, want 3", len(m1))
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Errorf("merge depends on input order: %+v vs %+v", m1[i], m2[i])
		}
	}
	if m1[0].Label != "drain@10ns" {
		t.Errorf("dedupe must keep the first label in sort order, got %q", m1[0].Label)
	}
}
