package harness

import (
	"fmt"

	"pmemspec/internal/fatomic"
	"pmemspec/internal/machine"
	"pmemspec/internal/workload"
)

// CampaignConfig describes a fault-injection campaign: the cross product
// of designs × workloads, each cell swept over a set of crash points
// (uniform grid plus, optionally, persist-boundary-aligned points
// discovered from an instrumented run) with optional misspeculation
// injection, executed on the worker pool.
type CampaignConfig struct {
	Designs   []machine.Design // nil: the four paper designs
	Workloads []string         // nil: every benchmark workload
	Params    workload.Params
	Points    int   // uniform crash points per cell
	MaxNS     int64 // latest uniform crash point, ns
	// Boundaries enables persist-boundary discovery: each cell first
	// runs once instrumented, then crashes just before/at/after each
	// discovered drain and WPQ-admission instant.
	Boundaries bool
	// BoundaryBudget caps discovered boundary instants per cell
	// (deterministic subsampling); 0 keeps all of them.
	BoundaryBudget int
	// MaxPoints caps the merged (uniform + boundary) crash points per
	// cell; 0 keeps all of them.
	MaxPoints int
	Mode      fatomic.Mode
	Inject    InjectionPlan
	Opts      []Option
}

// TrialRecord is the machine-readable result of one campaign trial.
// Fields are simulation-deterministic: a campaign serializes to
// byte-identical JSON regardless of pool width.
type TrialRecord struct {
	Design            string `json:"design"`
	Workload          string `json:"workload"`
	Point             string `json:"point"` // provenance label, e.g. "uniform@12000ns", "pre-drain@8123ns"
	CrashAtNS         int64  `json:"crash_at_ns"`
	Crashed           bool   `json:"crashed"`
	CommittedFASEs    uint64 `json:"committed_fases"`
	Aborts            uint64 `json:"aborts,omitempty"`
	LoadSignals       uint64 `json:"load_signals,omitempty"`
	StoreSignals      uint64 `json:"store_signals,omitempty"`
	InjectedStale     uint64 `json:"injected_stale_loads,omitempty"`
	InjectedOOO       uint64 `json:"injected_ooo_persists,omitempty"`
	InjectedUnclaimed uint64 `json:"injected_unclaimed,omitempty"`
	ThreadsRolledBack int    `json:"threads_rolled_back"`
	EntriesUndone     int    `json:"entries_undone"`
	EntriesReplayed   int    `json:"entries_replayed"`
	Verdict           string `json:"verdict"` // "ok" | "violation" | "error"
	Detail            string `json:"detail,omitempty"`
}

// VerdictOK, VerdictViolation and VerdictError classify a trial: the
// invariants held; the recovered image broke an invariant (the paper's
// correctness claim failed); or the trial itself could not run.
const (
	VerdictOK        = "ok"
	VerdictViolation = "violation"
	VerdictError     = "error"
)

// CampaignReport is the machine-readable output of RunCampaign.
type CampaignReport struct {
	Threads    int           `json:"threads"`
	Ops        int           `json:"ops"`
	Seed       int64         `json:"seed"`
	Mode       string        `json:"mode"`
	Injection  InjectionPlan `json:"injection"`
	Trials     []TrialRecord `json:"trials"`
	Violations int           `json:"violations"`
	Failures   int           `json:"failures"`
}

// CellSummary aggregates one (design, workload) cell of a report.
type CellSummary struct {
	Design, Workload             string
	Trials, Crashed              int
	Violations, Failures         int
	RolledBack, Undone, Replayed int
	InjectedStale, InjectedOOO   uint64
}

// Cells summarizes the report per (design, workload) cell, in first-
// appearance order.
func (r CampaignReport) Cells() []CellSummary {
	idx := map[[2]string]int{}
	var out []CellSummary
	for _, t := range r.Trials {
		key := [2]string{t.Design, t.Workload}
		i, ok := idx[key]
		if !ok {
			i = len(out)
			idx[key] = i
			out = append(out, CellSummary{Design: t.Design, Workload: t.Workload})
		}
		c := &out[i]
		c.Trials++
		if t.Crashed {
			c.Crashed++
		}
		switch t.Verdict {
		case VerdictViolation:
			c.Violations++
		case VerdictError:
			c.Failures++
		}
		c.RolledBack += t.ThreadsRolledBack
		c.Undone += t.EntriesUndone
		c.Replayed += t.EntriesReplayed
		c.InjectedStale += t.InjectedStale
		c.InjectedOOO += t.InjectedOOO
	}
	return out
}

// record converts a trial outcome to its report row.
func record(o CrashOutcome) TrialRecord {
	t := TrialRecord{
		Design:            o.Design.String(),
		Workload:          o.Workload,
		Point:             o.Label,
		CrashAtNS:         o.CrashAtNS,
		Crashed:           o.Crashed,
		CommittedFASEs:    o.Runtime.FASEs,
		Aborts:            o.Runtime.Aborts,
		LoadSignals:       o.Runtime.LoadSignals,
		StoreSignals:      o.Runtime.StoreSignals,
		InjectedStale:     o.Injected.StaleLoads,
		InjectedOOO:       o.Injected.OOOPersists,
		InjectedUnclaimed: o.Injected.Unclaimed,
		ThreadsRolledBack: o.Recovery.ThreadsRolledBack,
		EntriesUndone:     o.Recovery.EntriesUndone,
		EntriesReplayed:   o.Recovery.EntriesReplayed,
	}
	switch {
	case o.Err != nil:
		t.Verdict = VerdictError
		t.Detail = o.Err.Error()
	case o.VerifyErr != nil:
		t.Verdict = VerdictViolation
		t.Detail = o.VerifyErr.Error()
	default:
		t.Verdict = VerdictOK
	}
	return t
}

// RunCampaign executes the campaign on the runner's worker pool in two
// phases — boundary discovery (one instrumented run per cell, when
// enabled), then the crash/injection trials — and assembles the report
// in deterministic cell-major, point-minor order. A cell whose boundary
// discovery fails falls back to its uniform grid and records the
// discovery failure as an error trial; a trial that fails to run is an
// error row, never an aborted campaign.
func (r *Runner) RunCampaign(cfg CampaignConfig) (CampaignReport, error) {
	designs := cfg.Designs
	if designs == nil {
		designs = machine.Designs
	}
	names := cfg.Workloads
	if names == nil {
		names = workload.Names()
	}
	for _, n := range names {
		if _, err := workload.ByName(n); err != nil {
			return CampaignReport{}, err
		}
	}
	uniform, err := UniformPoints(cfg.Points, cfg.MaxNS)
	if err != nil {
		return CampaignReport{}, err
	}

	type cell struct {
		design machine.Design
		name   string
		params workload.Params
	}
	var cells []cell
	for _, d := range designs {
		for _, n := range names {
			p := cfg.Params
			if n == "memcached" && p.DataSize < 1024 {
				p.DataSize = 1024
			}
			cells = append(cells, cell{design: d, name: n, params: p})
		}
	}

	spec := func(c cell, pt CrashPoint) TrialSpec {
		return TrialSpec{Design: c.design, Workload: c.name, Params: c.params,
			Point: pt, Mode: cfg.Mode, Inject: cfg.Inject, Opts: cfg.Opts}
	}

	// Phase 1: persist-boundary discovery, one instrumented run per cell.
	discovered := make([][]CrashPoint, len(cells))
	discoveryErr := make([]error, len(cells))
	if cfg.Boundaries {
		jobs := make([]Job[Boundaries], len(cells))
		for i := range cells {
			c := cells[i]
			jobs[i] = Job[Boundaries]{
				Label: fmt.Sprintf("boundaries: %s / %s", c.design, c.name),
				Run: func() (Boundaries, error) {
					return DiscoverBoundaries(spec(c, NoCrash))
				},
			}
		}
		for i, res := range RunAll(jobs, r.Parallel, r.Progress) {
			if res.Err != nil {
				discoveryErr[i] = res.Err
				continue
			}
			discovered[i] = res.Result.Points(cfg.BoundaryBudget)
		}
	}

	// Phase 2: the trials, cell-major so the report order is stable.
	var specs []TrialSpec
	var prefix []TrialRecord
	for i, c := range cells {
		if err := discoveryErr[i]; err != nil {
			t := record(CrashOutcome{Design: c.design, Workload: c.name,
				CrashAtNS: NoCrash.AtNS, Label: "boundary-discovery", Err: err})
			prefix = append(prefix, t)
		}
		pts := capPoints(MergePoints(uniform, discovered[i]), cfg.MaxPoints)
		for _, pt := range pts {
			specs = append(specs, spec(c, pt))
		}
		if cfg.Inject.Enabled() {
			// Run-to-completion trial: injected misspeculations abort
			// FASEs mid-flight, yet the final image must reflect every
			// committed operation.
			specs = append(specs, spec(c, NoCrash))
		}
	}
	outs := r.RunTrials(specs)

	rep := CampaignReport{
		Threads:   cfg.Params.Threads,
		Ops:       cfg.Params.Ops,
		Seed:      cfg.Params.Seed,
		Mode:      modeName(cfg.Mode),
		Injection: cfg.Inject,
		Trials:    prefix,
	}
	for _, o := range outs {
		rep.Trials = append(rep.Trials, record(o))
	}
	for _, t := range rep.Trials {
		switch t.Verdict {
		case VerdictViolation:
			rep.Violations++
		case VerdictError:
			rep.Failures++
		}
	}
	return rep, nil
}

// RunCampaign executes cfg on a GOMAXPROCS-wide pool.
func RunCampaign(cfg CampaignConfig) (CampaignReport, error) {
	return (&Runner{}).RunCampaign(cfg)
}

func modeName(m fatomic.Mode) string {
	if m == fatomic.Eager {
		return "eager"
	}
	return "lazy"
}
