// Package persist holds the software side of each evaluated design: the
// ordering instrumentation a compiler or library inserts into
// failure-atomic code (Figure 2 of the PMEM-Spec paper). The
// failure-atomic runtime calls these hooks instead of hard-coding any
// ISA, so one FASE implementation runs unchanged on all four designs:
//
//	IntelX86     log → clwb+sfence → data → clwb+sfence
//	DPO          same binary as IntelX86 (clwb is absorbed by the persist
//	             buffer; sfence drains it)
//	HOPS         log → ofence → data → dfence
//	StrandWeaver log → persist-barrier → data → NewStrand per update,
//	             JoinStrand at the end (§2.1: each update is its own
//	             strand, so independent updates drain concurrently)
//	PMEM-Spec    log → data → spec-barrier (no ordering annotation at all)
package persist

import (
	"pmemspec/internal/machine"
	"pmemspec/internal/mem"
)

// Model is the per-design instrumentation contract.
type Model interface {
	// Design names the hardware this instrumentation targets.
	Design() machine.Design
	// Flush pushes a just-written PM range toward the persistence
	// domain (IntelX86/DPO: one CLWB per touched cache block; the
	// buffered and persist-path designs: nothing — their datapaths
	// carry every store).
	Flush(t *machine.Thread, a mem.Addr, size int)
	// OrderBarrier orders previously flushed/issued persists before
	// subsequent PM stores (sfence / sfence / ofence / persist-barrier /
	// nothing).
	OrderBarrier(t *machine.Thread)
	// NextUpdate closes one failure-atomic update (log+data pair). Most
	// designs order it like OrderBarrier; StrandWeaver instead opens a
	// fresh strand so independent updates drain concurrently.
	NextUpdate(t *machine.Thread)
	// DurableBarrier returns only when every prior PM store of this
	// thread is durable (sfence / sfence / dfence / JoinStrand /
	// spec-barrier).
	DurableBarrier(t *machine.Thread)
}

// ForDesign returns the instrumentation model for a design.
func ForDesign(d machine.Design) Model {
	switch d {
	case machine.IntelX86:
		return x86Model{}
	case machine.DPO:
		return dpoModel{}
	case machine.HOPS:
		return hopsModel{}
	case machine.PMEMSpec:
		return specModel{}
	case machine.Strand:
		return strandModel{}
	default:
		panic("persist: unknown design")
	}
}

// flushBlocks issues one CLWB per cache block overlapping [a, a+size).
func flushBlocks(t *machine.Thread, a mem.Addr, size int) {
	for blk := mem.BlockAlign(a); blk < a+mem.Addr(size); blk += mem.BlockSize {
		t.CLWB(blk)
	}
}

type x86Model struct{}

func (x86Model) Design() machine.Design                        { return machine.IntelX86 }
func (x86Model) Flush(t *machine.Thread, a mem.Addr, size int) { flushBlocks(t, a, size) }
func (x86Model) OrderBarrier(t *machine.Thread)                { t.SFence() }
func (x86Model) NextUpdate(t *machine.Thread)                  { t.SFence() }
func (x86Model) DurableBarrier(t *machine.Thread)              { t.SFence() }

type dpoModel struct{}

func (dpoModel) Design() machine.Design                        { return machine.DPO }
func (dpoModel) Flush(t *machine.Thread, a mem.Addr, size int) { flushBlocks(t, a, size) }
func (dpoModel) OrderBarrier(t *machine.Thread)                { t.SFence() }
func (dpoModel) NextUpdate(t *machine.Thread)                  { t.SFence() }
func (dpoModel) DurableBarrier(t *machine.Thread)              { t.SFence() }

type hopsModel struct{}

func (hopsModel) Design() machine.Design                        { return machine.HOPS }
func (hopsModel) Flush(t *machine.Thread, a mem.Addr, size int) {}
func (hopsModel) OrderBarrier(t *machine.Thread)                { t.OFence() }
func (hopsModel) NextUpdate(t *machine.Thread)                  { t.OFence() }
func (hopsModel) DurableBarrier(t *machine.Thread)              { t.DFence() }

type specModel struct{}

func (specModel) Design() machine.Design                        { return machine.PMEMSpec }
func (specModel) Flush(t *machine.Thread, a mem.Addr, size int) {}
func (specModel) OrderBarrier(t *machine.Thread)                {}
func (specModel) NextUpdate(t *machine.Thread)                  {}
func (specModel) DurableBarrier(t *machine.Thread)              { t.SpecBarrier() }

type strandModel struct{}

func (strandModel) Design() machine.Design                        { return machine.Strand }
func (strandModel) Flush(t *machine.Thread, a mem.Addr, size int) {}
func (strandModel) OrderBarrier(t *machine.Thread)                { t.PersistBarrier() }
func (strandModel) NextUpdate(t *machine.Thread)                  { t.NewStrand() }
func (strandModel) DurableBarrier(t *machine.Thread)              { t.JoinStrand() }
