package persist

import (
	"testing"

	"pmemspec/internal/machine"
	"pmemspec/internal/mem"
)

func newMachine(t *testing.T, d machine.Design) *machine.Machine {
	t.Helper()
	cfg := machine.DefaultConfig(d, 1)
	cfg.MemBytes = 4 << 20
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestForDesignRoundTrip(t *testing.T) {
	for _, d := range machine.Designs {
		if got := ForDesign(d).Design(); got != d {
			t.Errorf("ForDesign(%v).Design() = %v", d, got)
		}
	}
}

// TestInstrumentationCounts checks which fence instructions each model
// emits — the Figure 2 contract.
func TestInstrumentationCounts(t *testing.T) {
	cases := []struct {
		design                  machine.Design
		clwbs, sfences          uint64
		ofences, dfences, specs uint64
	}{
		{machine.IntelX86, 2, 2, 0, 0, 0}, // flush+order, then durable
		{machine.DPO, 2, 2, 0, 0, 0},
		{machine.HOPS, 0, 0, 1, 1, 0},
		{machine.PMEMSpec, 0, 0, 0, 0, 1},
	}
	for _, c := range cases {
		c := c
		t.Run(c.design.String(), func(t *testing.T) {
			m := newMachine(t, c.design)
			model := ForDesign(c.design)
			base := m.Space().Base() + 1<<20
			m.Spawn("w", func(th *machine.Thread) {
				th.StoreU64(base, 1)
				model.Flush(th, base, 8) // one block
				model.OrderBarrier(th)
				th.StoreU64(base+64, 2)
				model.Flush(th, base+64, 8)
				model.DurableBarrier(th)
			})
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			s := m.Stats()
			if s.CLWBs != c.clwbs || s.SFences != c.sfences ||
				s.OFences != c.ofences || s.DFences != c.dfences || s.SpecBarriers != c.specs {
				t.Errorf("counts = clwb %d sfence %d ofence %d dfence %d spec %d, want %+v",
					s.CLWBs, s.SFences, s.OFences, s.DFences, s.SpecBarriers, c)
			}
		})
	}
}

// TestDurableBarrierMakesDataDurable: after DurableBarrier, the persisted
// image holds the data on every design.
func TestDurableBarrierMakesDataDurable(t *testing.T) {
	for _, d := range machine.Designs {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			m := newMachine(t, d)
			model := ForDesign(d)
			base := m.Space().Base() + 1<<20
			m.Spawn("w", func(th *machine.Thread) {
				for i := 0; i < 4; i++ {
					a := base + mem.Addr(i*64)
					th.StoreU64(a, uint64(i+1))
					model.Flush(th, a, 8)
				}
				model.DurableBarrier(th)
				for i := 0; i < 4; i++ {
					if got := m.Space().PM.ReadU64(base + mem.Addr(i*64)); got != uint64(i+1) {
						t.Errorf("%s: slot %d = %d after durable barrier", d, i, got)
					}
				}
			})
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFlushCoversWholeRange: a multi-block range flush issues one CLWB
// per touched block on IntelX86.
func TestFlushCoversWholeRange(t *testing.T) {
	m := newMachine(t, machine.IntelX86)
	model := ForDesign(machine.IntelX86)
	base := m.Space().Base() + 1<<20
	m.Spawn("w", func(th *machine.Thread) {
		buf := make([]byte, 200) // spans 4 blocks from offset 30
		th.Store(base+30, buf)
		model.Flush(th, base+30, 200)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().CLWBs; got != 4 {
		t.Errorf("CLWBs = %d, want 4 (blocks spanned)", got)
	}
}
