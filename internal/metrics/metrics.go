// Package metrics is the simulator's deterministic observability layer:
// a registry of named counters, high-water gauges and histograms that the
// hot layers (pmc, ppath, machine, osint) publish into, plus an event
// timeline stamped with the *simulated* clock (timeline.go).
//
// Determinism is the design constraint: every value is derived from the
// simulation (whose dispatch order is a total order), never from wall
// time, and every serialization walks a stable sort order — so a metrics
// snapshot is byte-identical run to run at any host worker-pool width.
// Instruments are deliberately allocation-light: a bound *Counter is one
// pointer dereference per update, and all mutators are nil-safe so
// uninstrumented components pay a single nil check.
//
// The registry is not host-concurrency-safe. Each simulated machine owns
// one registry and the simulation kernel serializes all updates; the
// experiment harness merges the per-run snapshots index-keyed after the
// worker-pool barrier.
package metrics

import (
	"encoding/json"
	"io"
	"sort"
)

// Counter is a monotonically growing event count.
type Counter struct{ v uint64 }

// Add increments the counter by n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the counter — the publish path for components that
// already aggregate their own stats and export them once per run.
func (c *Counter) Set(v uint64) {
	if c != nil {
		c.v = v
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge tracks the high-water mark of an instantaneous quantity (queue
// occupancy, live buffer entries). Merging two gauges takes the max.
type Gauge struct{ v int64 }

// Observe raises the gauge to v if v is a new maximum. Nil-safe.
func (g *Gauge) Observe(v int64) {
	if g != nil && v > g.v {
		g.v = v
	}
}

// Value returns the high-water mark (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bound distribution: counts[i] tallies observations
// ≤ bounds[i], and the final bucket is the implicit +Inf overflow.
type Histogram struct {
	bounds []int64
	counts []uint64
	sum    int64
	n      uint64
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.sum += v
	h.n++
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// key identifies one metric within a registry.
type key struct{ component, name string }

// Registry is one run's metric namespace, keyed by (component, name).
// Get-or-create accessors return bound instruments for hot-path use; all
// accessors on a nil registry return nil instruments, whose mutators
// no-op.
type Registry struct {
	counters map[key]*Counter
	gauges   map[key]*Gauge
	hists    map[key]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[key]*Counter),
		gauges:   make(map[key]*Gauge),
		hists:    make(map[key]*Histogram),
	}
}

// Counter returns the named counter, creating it at zero if needed.
func (r *Registry) Counter(component, name string) *Counter {
	if r == nil {
		return nil
	}
	k := key{component, name}
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the named high-water gauge, creating it if needed.
func (r *Registry) Gauge(component, name string) *Gauge {
	if r == nil {
		return nil
	}
	k := key{component, name}
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending upper bounds if needed. A second registration reuses the
// existing histogram (its original bounds win).
func (r *Registry) Histogram(component, name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	k := key{component, name}
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{
			bounds: append([]int64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
		r.hists[k] = h
	}
	return h
}

// Bucket is one histogram bucket in a snapshot: the count of
// observations ≤ Le. The overflow bucket carries Inf=true.
type Bucket struct {
	Le    int64  `json:"le"`
	Inf   bool   `json:"inf,omitempty"`
	Count uint64 `json:"count"`
}

// Metric is one serialized instrument. Exactly one of the value groups
// is populated, selected by Kind: "counter" (Value), "gauge" (Max), or
// "histogram" (Count/Sum/Buckets).
type Metric struct {
	Component string   `json:"component"`
	Name      string   `json:"name"`
	Kind      string   `json:"kind"`
	Value     uint64   `json:"value,omitempty"`
	Max       int64    `json:"max,omitempty"`
	Count     uint64   `json:"count,omitempty"`
	Sum       int64    `json:"sum,omitempty"`
	Buckets   []Bucket `json:"buckets,omitempty"`
}

// less orders metrics on the total (component, name, kind) key — the
// stable sort order every snapshot and merge walks.
func (m Metric) less(o Metric) bool {
	if m.Component != o.Component {
		return m.Component < o.Component
	}
	if m.Name != o.Name {
		return m.Name < o.Name
	}
	return m.Kind < o.Kind
}

// sameKey reports whether two metrics serialize the same instrument.
func (m Metric) sameKey(o Metric) bool {
	return m.Component == o.Component && m.Name == o.Name && m.Kind == o.Kind
}

// Snapshot is a registry's serialized state, stable-sorted by
// (component, name, kind) so identical registries marshal to identical
// bytes regardless of construction or iteration order.
type Snapshot []Metric

// Snapshot serializes the registry. Map iteration order never reaches
// the output: entries are collected, then sorted on the total key.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	out := make(Snapshot, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for k, c := range r.counters {
		out = append(out, Metric{Component: k.component, Name: k.name, Kind: "counter", Value: c.v})
	}
	for k, g := range r.gauges {
		out = append(out, Metric{Component: k.component, Name: k.name, Kind: "gauge", Max: g.v})
	}
	for k, h := range r.hists {
		m := Metric{Component: k.component, Name: k.name, Kind: "histogram", Count: h.n, Sum: h.sum}
		for i, b := range h.bounds {
			m.Buckets = append(m.Buckets, Bucket{Le: b, Count: h.counts[i]})
		}
		m.Buckets = append(m.Buckets, Bucket{Inf: true, Count: h.counts[len(h.bounds)]})
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Merge folds src into dst: counters and histogram buckets sum, gauges
// take the max. The result is stable-sorted; inputs need not share keys.
// Histograms with differing bucket shapes keep dst's shape and add the
// overlapping prefix (components always register identical bounds, so
// this is a guard, not a feature).
func Merge(dst, src Snapshot) Snapshot {
	all := make(Snapshot, 0, len(dst)+len(src))
	all = append(all, dst...)
	all = append(all, src...)
	sort.SliceStable(all, func(i, j int) bool { return all[i].less(all[j]) })
	out := all[:0]
	for _, m := range all {
		if len(out) == 0 || !out[len(out)-1].sameKey(m) {
			// Deep-copy buckets so merging never aliases an input.
			m.Buckets = append([]Bucket(nil), m.Buckets...)
			out = append(out, m)
			continue
		}
		prev := &out[len(out)-1]
		switch m.Kind {
		case "counter":
			prev.Value += m.Value
		case "gauge":
			if m.Max > prev.Max {
				prev.Max = m.Max
			}
		case "histogram":
			prev.Count += m.Count
			prev.Sum += m.Sum
			for i := range prev.Buckets {
				if i < len(m.Buckets) {
					prev.Buckets[i].Count += m.Buckets[i].Count
				}
			}
		}
	}
	return out
}

// Get returns the metric with the given key, if present.
func (s Snapshot) Get(component, name string) (Metric, bool) {
	for _, m := range s {
		if m.Component == component && m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// WriteJSON writes the snapshot as indented JSON with a trailing newline.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Grid aggregates per-run snapshots across an experiment sweep, keyed by
// (design, workload) — the paper's cell identity. Adding is commutative
// (counter sums, gauge maxes), so a grid filled from an index-keyed
// result slice is identical at any worker-pool width.
type Grid struct {
	cells map[cellKey]Snapshot
}

type cellKey struct{ design, workload string }

// NewGrid returns an empty grid.
func NewGrid() *Grid { return &Grid{cells: make(map[cellKey]Snapshot)} }

// Add merges one run's snapshot into its (design, workload) cell.
func (g *Grid) Add(design, workload string, s Snapshot) {
	if g == nil || len(s) == 0 {
		return
	}
	k := cellKey{design, workload}
	g.cells[k] = Merge(g.cells[k], s)
}

// Cell returns the merged snapshot of one (design, workload) cell.
func (g *Grid) Cell(design, workload string) Snapshot {
	if g == nil {
		return nil
	}
	return g.cells[cellKey{design, workload}]
}

// GridCell is one serialized grid cell.
type GridCell struct {
	Design   string   `json:"design"`
	Workload string   `json:"workload"`
	Metrics  Snapshot `json:"metrics"`
}

// Cells returns the grid's cells sorted by (design, workload).
func (g *Grid) Cells() []GridCell {
	if g == nil {
		return nil
	}
	keys := make([]cellKey, 0, len(g.cells))
	for k := range g.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].design != keys[j].design {
			return keys[i].design < keys[j].design
		}
		return keys[i].workload < keys[j].workload
	})
	out := make([]GridCell, 0, len(keys))
	for _, k := range keys {
		out = append(out, GridCell{Design: k.design, Workload: k.workload, Metrics: g.cells[k]})
	}
	return out
}

// WriteJSON writes the grid as indented JSON with a trailing newline:
// {"cells": [...]} in stable cell order. The file deliberately carries
// no host context (worker count, CPU count, wall time) so it is
// byte-identical at any -parallel width.
func (g *Grid) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(struct {
		Cells []GridCell `json:"cells"`
	}{Cells: g.Cells()}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
