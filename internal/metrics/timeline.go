// Timeline records discrete simulation events — spans and instants on
// named lanes — stamped with the simulated clock, and serializes them in
// the Chrome trace-event format so a single run can be inspected in
// about:tracing or Perfetto. Cycles convert to trace microseconds at the
// simulator's fixed 2 GHz (sim.CyclesPerNS), so the viewer's time axis
// reads in real units while staying fully deterministic.
package metrics

import (
	"encoding/json"
	"io"
	"sort"

	"pmemspec/internal/sim"
)

// Event is one timeline entry. Ph follows the Chrome trace-event phase
// convention: 'X' is a complete span (At..At+Dur), 'i' an instant.
type Event struct {
	At   sim.Time
	Dur  sim.Time
	Lane int
	Ph   byte
	Name string
	Cat  string
	// Optional single argument, shown in the viewer's detail pane.
	ArgName string
	Arg     int64
	HasArg  bool
}

// Lane numbering convention shared by the instrumented components: core
// and thread activity uses the core ID directly; hardware structures
// offset by component so lanes never collide.
const (
	LaneWPQ  = 100 // + controller index
	LaneSpec = 200 // + core index
	LaneOS   = 300
)

// Timeline accumulates events for one simulated machine. A nil timeline
// is the disabled state: all recorders no-op, so instrumentation sites
// cost one nil check when tracing is off.
type Timeline struct {
	events []Event
}

// NewTimeline returns an empty, enabled timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Instant records a zero-duration event on a lane.
func (t *Timeline) Instant(at sim.Time, lane int, cat, name string) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{At: at, Lane: lane, Ph: 'i', Cat: cat, Name: name})
}

// InstantArg records an instant carrying one named argument (for
// example the block address that triggered a misspeculation abort).
func (t *Timeline) InstantArg(at sim.Time, lane int, cat, name, argName string, arg int64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{
		At: at, Lane: lane, Ph: 'i', Cat: cat, Name: name,
		ArgName: argName, Arg: arg, HasArg: true,
	})
}

// Span records a complete event covering [from, to]. Zero-length spans
// are kept — a barrier that didn't stall is still a barrier.
func (t *Timeline) Span(from, to sim.Time, lane int, cat, name string) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{At: from, Dur: to - from, Lane: lane, Ph: 'X', Cat: cat, Name: name})
}

// SpanArg records a complete event with one named argument.
func (t *Timeline) SpanArg(from, to sim.Time, lane int, cat, name, argName string, arg int64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{
		At: from, Dur: to - from, Lane: lane, Ph: 'X', Cat: cat, Name: name,
		ArgName: argName, Arg: arg, HasArg: true,
	})
}

// Len returns the number of recorded events (0 on nil).
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded events in recording order.
func (t *Timeline) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// NamedTimeline pairs a timeline with the run it came from, so a trace
// file can hold several runs as separate trace processes.
type NamedTimeline struct {
	Name string
	TL   *Timeline
}

// traceEvent is the Chrome trace-event JSON shape. ts and dur are in
// microseconds; args is at most one key, and encoding/json marshals map
// keys sorted, so output bytes are deterministic.
type traceEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat,omitempty"`
	Ph   string           `json:"ph"`
	Ts   float64          `json:"ts"`
	Dur  *float64         `json:"dur,omitempty"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	S    string           `json:"s,omitempty"`
	Args map[string]int64 `json:"args,omitempty"`
}

// usec converts simulated cycles to trace microseconds.
func usec(t sim.Time) float64 {
	return float64(t) / (1000 * sim.CyclesPerNS)
}

// WriteTrace serializes the runs as one Chrome trace-event file. Each
// run becomes a trace process (pid = run index) named by a metadata
// event; lanes become threads. Events are emitted in (time, lane,
// recording order) so the file is byte-stable for a given simulation.
func WriteTrace(w io.Writer, runs []NamedTimeline) error {
	type doc struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}
	out := doc{DisplayTimeUnit: "ns"}
	for pid, run := range runs {
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]int64{"sort_index": int64(pid)},
		})
		// The trace format names processes via a string arg, but our
		// args map is int64-typed for determinism; encode the run name
		// in a thread-less metadata-free way instead: a zero-ts instant
		// on lane 0 carrying the name as the event name.
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: "run:" + run.Name, Cat: "meta", Ph: "i", Ts: 0, Pid: pid, Tid: 0, S: "g",
		})
		evs := append([]Event(nil), run.TL.Events()...)
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].At != evs[j].At {
				return evs[i].At < evs[j].At
			}
			return evs[i].Lane < evs[j].Lane
		})
		for _, e := range evs {
			te := traceEvent{
				Name: e.Name, Cat: e.Cat, Ph: string(e.Ph),
				Ts: usec(e.At), Pid: pid, Tid: e.Lane,
			}
			if e.Ph == 'X' {
				d := usec(e.Dur)
				te.Dur = &d
			}
			if e.Ph == 'i' {
				te.S = "t"
			}
			if e.HasArg {
				te.Args = map[string]int64{e.ArgName: e.Arg}
			}
			out.TraceEvents = append(out.TraceEvents, te)
		}
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
