// ServeDebug exposes the Go runtime's pprof and expvar endpoints for
// the long multi-minute experiment sweeps. This is host-side
// observability — wall-clock profiles of the simulator process itself —
// and deliberately lives outside the deterministic surface: nothing it
// serves feeds back into simulation output.
package metrics

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
)

// ServeDebug binds addr (e.g. "localhost:6060") and serves
// /debug/pprof/* and /debug/vars on it in a background goroutine. The
// bind happens synchronously so address errors surface to the caller;
// the returned string is the resolved listen address ("" on error).
func ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	// Touch expvar so its /debug/vars handler registration is linked in
	// even if no vars are published.
	_ = expvar.Get("cmdline")
	go func() {
		// The listener lives for the process; Serve only returns on
		// close, and its error has nowhere useful to go.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
