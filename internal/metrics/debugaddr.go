// ServeDebug exposes the Go runtime's pprof and expvar endpoints for
// the long multi-minute experiment sweeps. This is host-side
// observability — wall-clock profiles of the simulator process itself —
// and deliberately lives outside the deterministic surface: nothing it
// serves feeds back into simulation output.
package metrics

import (
	"expvar"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
	"time"
)

// ServeDebug binds addr (e.g. "localhost:6060") and serves
// /debug/pprof/* and /debug/vars on it in a background goroutine. The
// bind happens synchronously so address errors surface to the caller;
// the returned string is the resolved listen address ("" on error).
// Closing the returned io.Closer shuts the listener and its connections
// down, so short-lived embedders (tests, the serve daemon's drain path)
// do not leak the socket for the rest of the process lifetime.
func ServeDebug(addr string) (string, io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	// Touch expvar so its /debug/vars handler registration is linked in
	// even if no vars are published.
	_ = expvar.Get("cmdline")
	srv := &http.Server{
		Handler: http.DefaultServeMux,
		// A client that connects and never sends a request header must
		// not pin a connection goroutine forever.
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		// Serve returns on Close; its error has nowhere useful to go.
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), &debugCloser{srv: srv, ln: ln}, nil
}

// debugCloser shuts the endpoint down. It closes the raw listener as
// well as the server: Server.Close only closes listeners Serve has
// already registered, and the Serve goroutine may not have run yet when
// a short-lived embedder closes — the extra Close makes the port free
// synchronously either way.
type debugCloser struct {
	srv *http.Server
	ln  net.Listener
}

func (c *debugCloser) Close() error {
	err := c.srv.Close()
	_ = c.ln.Close() // idempotent; error is "already closed" in the common case
	return err
}
