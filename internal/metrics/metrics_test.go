package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pmemspec/internal/sim"
)

// TestSnapshotStableOrder builds the same logical registry twice with
// different insertion orders and requires byte-identical JSON — the
// property the -parallel 1 vs 8 metrics cmp in ci.sh rests on.
func TestSnapshotStableOrder(t *testing.T) {
	build := func(reversed bool) Snapshot {
		r := NewRegistry()
		ops := []func(){
			func() { r.Counter("wpq", "accepts").Add(3) },
			func() { r.Counter("specbuf", "load_misspecs").Add(1) },
			func() { r.Gauge("ppath", "peak_outstanding").Observe(7) },
			func() { r.Counter("wpq", "coalesced").Add(2) },
			func() { r.Histogram("wpq", "occupancy", []int64{1, 4, 16}).Observe(5) },
			func() { r.Gauge("wpq", "peak_occupancy").Observe(4) },
		}
		if reversed {
			for i := len(ops) - 1; i >= 0; i-- {
				ops[i]()
			}
		} else {
			for _, op := range ops {
				op()
			}
		}
		return r.Snapshot()
	}
	var a, b bytes.Buffer
	if err := build(false).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build(true).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("snapshot JSON depends on insertion order:\n%s\nvs\n%s", a.String(), b.String())
	}
	// The order must be the documented (component, name, kind) sort.
	snap := build(false)
	for i := 1; i < len(snap); i++ {
		if snap[i].less(snap[i-1]) {
			t.Fatalf("snapshot not sorted at %d: %+v before %+v", i, snap[i-1], snap[i])
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "y")
	c.Inc()
	c.Add(5)
	c.Set(9)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("x", "y")
	g.Observe(10)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	h := r.Histogram("x", "y", []int64{1})
	h.Observe(3)
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}

	var tl *Timeline
	tl.Instant(1, 0, "c", "n")
	tl.Span(1, 2, 0, "c", "n")
	tl.InstantArg(1, 0, "c", "n", "a", 1)
	tl.SpanArg(1, 2, 0, "c", "n", "a", 1)
	if tl.Len() != 0 || tl.Events() != nil {
		t.Fatal("nil timeline recorded events")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c", "lat", []int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	m, ok := r.Snapshot().Get("c", "lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if m.Count != 6 || m.Sum != 1+10+11+100+101+5000 {
		t.Fatalf("count/sum wrong: %+v", m)
	}
	want := []uint64{2, 2, 2} // ≤10, ≤100, +Inf
	for i, b := range m.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d: got %d want %d", i, b.Count, want[i])
		}
	}
	if !m.Buckets[2].Inf {
		t.Fatal("last bucket not marked Inf")
	}
}

func TestMergeSemantics(t *testing.T) {
	a := NewRegistry()
	a.Counter("c", "n").Add(3)
	a.Gauge("c", "g").Observe(5)
	a.Histogram("c", "h", []int64{10}).Observe(4)
	b := NewRegistry()
	b.Counter("c", "n").Add(4)
	b.Counter("c", "only_b").Add(1)
	b.Gauge("c", "g").Observe(2)
	b.Histogram("c", "h", []int64{10}).Observe(40)

	m := Merge(a.Snapshot(), b.Snapshot())
	if v, _ := m.Get("c", "n"); v.Value != 7 {
		t.Fatalf("counter merge: got %d want 7", v.Value)
	}
	if v, _ := m.Get("c", "only_b"); v.Value != 1 {
		t.Fatalf("one-sided counter lost: %+v", v)
	}
	if v, _ := m.Get("c", "g"); v.Max != 5 {
		t.Fatalf("gauge merge: got %d want 5", v.Max)
	}
	h, _ := m.Get("c", "h")
	if h.Count != 2 || h.Buckets[0].Count != 1 || h.Buckets[1].Count != 1 {
		t.Fatalf("histogram merge wrong: %+v", h)
	}

	// Merge must not mutate its inputs' buckets.
	ha, _ := a.Snapshot().Get("c", "h")
	if ha.Buckets[0].Count != 1 {
		t.Fatalf("merge aliased input buckets: %+v", ha)
	}
}

func TestGridStableJSON(t *testing.T) {
	build := func(order []string) *bytes.Buffer {
		g := NewGrid()
		for _, cell := range order {
			r := NewRegistry()
			r.Counter("c", "ops").Add(uint64(len(cell)))
			parts := strings.SplitN(cell, "/", 2)
			g.Add(parts[0], parts[1], r.Snapshot())
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	a := build([]string{"pmemspec/queue", "intel/queue", "pmemspec/tree", "intel/tree"})
	b := build([]string{"intel/tree", "pmemspec/tree", "intel/queue", "pmemspec/queue"})
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("grid JSON depends on add order:\n%s\nvs\n%s", a.String(), b.String())
	}
	var doc struct {
		Cells []GridCell `json:"cells"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("grid JSON invalid: %v", err)
	}
	if len(doc.Cells) != 4 || doc.Cells[0].Design != "intel" || doc.Cells[0].Workload != "queue" {
		t.Fatalf("grid cell order wrong: %+v", doc.Cells)
	}
}

func TestGridAddMerges(t *testing.T) {
	g := NewGrid()
	r1 := NewRegistry()
	r1.Counter("c", "ops").Add(2)
	r2 := NewRegistry()
	r2.Counter("c", "ops").Add(3)
	g.Add("d", "w", r1.Snapshot())
	g.Add("d", "w", r2.Snapshot())
	if v, _ := g.Cell("d", "w").Get("c", "ops"); v.Value != 5 {
		t.Fatalf("grid cell merge: got %d want 5", v.Value)
	}
}

func TestWriteTrace(t *testing.T) {
	tl := NewTimeline()
	tl.Span(sim.NS(10), sim.NS(20), 1, "barrier", "sfence")
	tl.Instant(sim.NS(5), LaneOS, "misspec", "stale_load")
	tl.InstantArg(sim.NS(7), LaneOS, "misspec", "ooo_persist", "block", 0x40)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []NamedTimeline{{Name: "PMEM-Spec/queue", TL: tl}}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			Ts   float64          `json:"ts"`
			Dur  float64          `json:"dur"`
			Tid  int              `json:"tid"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v\n%s", err, buf.String())
	}
	// process_name meta + run-name instant + 3 events.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d trace events, want 5", len(doc.TraceEvents))
	}
	// Events are time-sorted after the two metadata entries.
	if doc.TraceEvents[2].Name != "stale_load" || doc.TraceEvents[3].Name != "ooo_persist" {
		t.Fatalf("events not time-sorted: %+v", doc.TraceEvents)
	}
	if doc.TraceEvents[3].Args["block"] != 0x40 {
		t.Fatalf("instant arg lost: %+v", doc.TraceEvents[3])
	}
	span := doc.TraceEvents[4]
	if span.Ph != "X" || span.Ts != 0.01 || span.Dur != 0.01 {
		// 10 ns = 0.01 µs at 2 GHz cycle stamping.
		t.Fatalf("span conversion wrong: %+v", span)
	}

	// Byte-stability: serializing the same timeline twice is identical.
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, []NamedTimeline{{Name: "PMEM-Spec/queue", TL: tl}}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("trace serialization not byte-stable")
	}
}

func TestServeDebug(t *testing.T) {
	addr, closer, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	if addr == "" || !strings.Contains(addr, ":") {
		t.Fatalf("bad resolved addr %q", addr)
	}
	// Second bind on a distinct ephemeral port must also work.
	addr2, closer2, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatalf("second ServeDebug: %v", err)
	}
	if addr2 == addr {
		t.Fatalf("both ephemeral binds resolved to %q", addr)
	}
	if err := closer2.Close(); err != nil {
		t.Fatalf("close second endpoint: %v", err)
	}
	// Closing the endpoint must free its port: rebinding the exact
	// address succeeds once the closer has run (the historical leak kept
	// the listener for the whole process lifetime).
	if err := closer.Close(); err != nil {
		t.Fatalf("close first endpoint: %v", err)
	}
	addr3, closer3, err := ServeDebug(addr)
	if err != nil {
		t.Fatalf("rebind %s after close: %v", addr, err)
	}
	if addr3 != addr {
		t.Fatalf("rebind resolved to %q, want %q", addr3, addr)
	}
	closer3.Close()
}
