// Package core implements the PMEM-Spec speculation machinery — the
// paper's primary contribution (§5): the speculation buffer that lives in
// the PM controller, the per-block load-misspeculation automaton
// (Initial → Evict → Speculated → Misspeculation, Figure 5), the
// speculation window, and the speculation-ID check that detects
// inter-thread store-misspeculation.
//
// The buffer observes three request streams at the PM controller
// (Table 2): WriteBack (dirty LLC evictions arriving on the regular
// path; PMEM-Spec drops their data but uses the notification to arm
// monitoring), Read (PM loads from the regular path), and Persist
// (stores arriving on the decoupled persist-path, optionally tagged with
// a speculation ID inside critical sections). The fourth input, Evict,
// is the speculation-window expiry, implemented lazily: expired entries
// are swept whenever the buffer is consulted.
package core

import (
	"fmt"

	"pmemspec/internal/mem"
	"pmemspec/internal/metrics"
	"pmemspec/internal/sim"
)

// LoadState is the load-misspeculation automaton state of a monitored
// block (Table 1). Initial is represented by the absence of an entry;
// Misspeculation fires the interrupt and releases the entry immediately.
type LoadState uint8

const (
	// LoadIdle means the entry does not participate in load-
	// misspeculation monitoring (it exists only for spec-ID tracking).
	LoadIdle LoadState = iota
	// LoadEvict: the PM controller saw a dirty LLC writeback for the
	// block; a following PM read would be a stale-read candidate.
	LoadEvict
	// LoadSpeculated: a PM read fetched the monitored block; if a
	// persist for it arrives within the window, the read was stale.
	LoadSpeculated
)

func (s LoadState) String() string {
	switch s {
	case LoadIdle:
		return "Idle"
	case LoadEvict:
		return "Evict"
	case LoadSpeculated:
		return "Speculated"
	default:
		return fmt.Sprintf("LoadState(%d)", uint8(s))
	}
}

// Kind distinguishes the two misspeculation classes of §5.
type Kind uint8

const (
	// LoadMisspec is the stale-read violation (§5.1).
	LoadMisspec Kind = iota
	// StoreMisspec is the inter-thread persist-order violation (§5.2).
	StoreMisspec
)

func (k Kind) String() string {
	if k == LoadMisspec {
		return "load"
	}
	return "store"
}

// Misspeculation describes one detected ordering violation. It is what
// the PM controller hands to the OS interrupt layer along with the
// faulting physical address.
type Misspeculation struct {
	Kind Kind
	Addr mem.Addr // block-aligned
	At   sim.Time
	// SeenID/NewID are the conflicting speculation IDs for StoreMisspec.
	SeenID, NewID uint64
}

func (m Misspeculation) String() string {
	if m.Kind == StoreMisspec {
		return fmt.Sprintf("store-misspeculation @%#x t=%v (seen spec-ID %d, got %d)", uint64(m.Addr), m.At, m.SeenID, m.NewID)
	}
	return fmt.Sprintf("load-misspeculation @%#x t=%v", uint64(m.Addr), m.At)
}

// Entry is one speculation-buffer slot (Figure 8): Address, State,
// Spec-ID and Inserted fields. Entries are short-living: they expire one
// speculation window after their last refresh.
type Entry struct {
	Addr     mem.Addr
	State    LoadState
	SpecID   uint64 // 0 = untagged
	Inserted sim.Time
}

// Stats counts speculation-buffer activity.
type Stats struct {
	// LoadMisspecs and StoreMisspecs count detected violations.
	LoadMisspecs, StoreMisspecs uint64
	// Expirations counts entries released by window expiry.
	Expirations uint64
	// Overflows counts insertions that found the buffer full of live
	// entries (each one pauses all cores, §5.3).
	Overflows uint64
	// WriteBacks, Reads, Persists count observed inputs.
	WriteBacks, Reads, Persists uint64
	// TrackedReads counts reads that transitioned an entry to Speculated.
	TrackedReads uint64
	// ToEvict and ToSpeculated count automaton state transitions *into*
	// the Evict and Speculated states (re-arms that keep the state are
	// not transitions); Deallocs counts entries released by persists or
	// handled misspeculations (expiry releases are Expirations).
	ToEvict, ToSpeculated, Deallocs uint64
	// PeakLive is the maximum number of simultaneously live entries
	// observed (may exceed capacity conceptually only via overflow
	// accounting; live entries are always ≤ capacity).
	PeakLive int
}

// Config parameterizes the speculation buffer.
type Config struct {
	// Entries is the buffer capacity (4 in the paper's main config).
	Entries int
	// Window is the speculation window: cores × idle persist-path
	// latency (160 ns in the main config, §8.1).
	Window sim.Time
	// FetchBased selects the rejected §5.1.3 detection scheme that
	// monitors recently *fetched* blocks instead of recently evicted
	// ones. It is implemented only for the ablation experiment showing
	// the write-on-allocate false-misspeculation storm.
	FetchBased bool
}

// pendingID is the spec-ID record attached to a pending (coalescing)
// write in the PM controller.
type pendingID struct {
	specID   uint64
	expireAt sim.Time
}

// Buffer is the speculation buffer in the PM controller, together with
// the spec-ID fields the controller attaches to its pending writes.
//
// Buffer entries proper are created only by dirty-LLC-writeback
// notifications (§8.3.2: "it creates the speculation buffer entry on the
// dirty block eviction from the last-level cache"), which keeps the
// 4-entry buffer sufficient. Store-misspeculation detection instead
// rides on the controller's write-pending entries: while a tagged write
// to a block is pending (buffered/coalescing, §4.2), its speculation ID
// is remembered, and a later-arriving tagged write with a lower ID is
// the §5.2 inter-thread persist-order violation.
type Buffer struct {
	cfg     Config
	entries []Entry // live entries, at most cfg.Entries
	// pending tracks spec-IDs of writes still pending in the controller
	// (bounded by the WPQ occupancy; pruned lazily).
	pending map[mem.Addr]pendingID
	// Stats is the buffer's activity record.
	Stats Stats

	// OnMisspec, when set, is invoked for every detected violation (the
	// interrupt line into the OS layer).
	OnMisspec func(Misspeculation)
	// OnOverflow, when set, is invoked when an insertion finds the
	// buffer full; until is the time the stall ends (oldest entry's
	// expiry). The machine layer pauses all cores until then.
	OnOverflow func(until sim.Time)

	// TL, when set, receives state-transition instants on lane Lane
	// (nil-safe: disabled tracing costs one nil check per transition).
	TL   *metrics.Timeline
	Lane int
}

// NewBuffer returns a speculation buffer with the given configuration.
func NewBuffer(cfg Config) *Buffer {
	if cfg.Entries < 1 {
		panic("core: speculation buffer needs at least one entry")
	}
	if cfg.Window <= 0 {
		panic("core: speculation window must be positive")
	}
	return &Buffer{
		cfg:     cfg,
		entries: make([]Entry, 0, cfg.Entries),
		pending: make(map[mem.Addr]pendingID),
	}
}

// Config returns the buffer's configuration.
func (b *Buffer) Config() Config { return b.cfg }

// Live returns the number of unexpired entries as of now.
func (b *Buffer) Live(now sim.Time) int {
	b.sweep(now)
	return len(b.entries)
}

// Lookup returns a copy of the live entry for a's block, if any.
func (b *Buffer) Lookup(now sim.Time, a mem.Addr) (Entry, bool) {
	b.sweep(now)
	if e := b.find(mem.BlockAlign(a)); e != nil {
		return *e, true
	}
	return Entry{}, false
}

// sweep drops entries whose speculation window has expired.
func (b *Buffer) sweep(now sim.Time) {
	kept := b.entries[:0]
	for _, e := range b.entries {
		if now-e.Inserted >= b.cfg.Window {
			b.Stats.Expirations++
			continue
		}
		kept = append(kept, e)
	}
	b.entries = kept
}

func (b *Buffer) find(blk mem.Addr) *Entry {
	for i := range b.entries {
		if b.entries[i].Addr == blk {
			return &b.entries[i]
		}
	}
	return nil
}

// allocate makes room for and returns a fresh entry for blk. When the
// buffer is full of live entries it models the paper's overflow
// behaviour: all cores pause until the oldest entry expires; that entry
// is then replaced.
func (b *Buffer) allocate(now sim.Time, blk mem.Addr) *Entry {
	if len(b.entries) < b.cfg.Entries {
		b.entries = append(b.entries, Entry{Addr: blk, Inserted: now})
		if len(b.entries) > b.Stats.PeakLive {
			b.Stats.PeakLive = len(b.entries)
		}
		return &b.entries[len(b.entries)-1]
	}
	// Overflow: stall everyone until the oldest window expires, which
	// frees that slot.
	oldest := 0
	for i := range b.entries {
		if b.entries[i].Inserted < b.entries[oldest].Inserted {
			oldest = i
		}
	}
	until := b.entries[oldest].Inserted + b.cfg.Window
	b.Stats.Overflows++
	b.Stats.Expirations++
	if b.OnOverflow != nil {
		b.OnOverflow(until)
	}
	b.entries[oldest] = Entry{Addr: blk, Inserted: now}
	return &b.entries[oldest]
}

// OnWriteBack records a dirty-LLC-writeback notification from the
// regular path: monitoring of the block begins (Initial → Evict), or an
// existing entry is re-armed with a fresh window.
func (b *Buffer) OnWriteBack(now sim.Time, a mem.Addr) {
	b.Stats.WriteBacks++
	b.sweep(now)
	blk := mem.BlockAlign(a)
	if e := b.find(blk); e != nil {
		if e.State != LoadEvict {
			b.Stats.ToEvict++
			b.TL.InstantArg(now, b.Lane, "specbuf", "evict_armed", "block", int64(blk))
		}
		e.State = LoadEvict
		e.Inserted = now
		return
	}
	e := b.allocate(now, blk)
	e.State = LoadEvict
	b.Stats.ToEvict++
	b.TL.InstantArg(now, b.Lane, "specbuf", "evict_armed", "block", int64(blk))
}

// OnRead records a PM load from the regular path and reports whether the
// load hit a monitored block (Evict/Speculated) — i.e. whether the read
// is a stale-read candidate. In the default eviction-based scheme a read
// of an unmonitored block is ignored (Figure 6b: no false misspeculation
// from write-on-allocate fetches). In the fetch-based ablation scheme
// every PM read arms monitoring.
func (b *Buffer) OnRead(now sim.Time, a mem.Addr) bool {
	b.Stats.Reads++
	b.sweep(now)
	blk := mem.BlockAlign(a)
	if e := b.find(blk); e != nil {
		if e.State == LoadEvict || e.State == LoadSpeculated || b.cfg.FetchBased {
			if e.State != LoadSpeculated {
				b.Stats.ToSpeculated++
				b.TL.InstantArg(now, b.Lane, "specbuf", "speculated", "block", int64(blk))
			}
			e.State = LoadSpeculated
			e.Inserted = now // the window (re)starts at the load (§5.1.2)
			b.Stats.TrackedReads++
			return true
		}
		return false
	}
	if b.cfg.FetchBased {
		e := b.allocate(now, blk)
		e.State = LoadSpeculated
		b.Stats.ToSpeculated++
		b.TL.InstantArg(now, b.Lane, "specbuf", "speculated", "block", int64(blk))
		b.Stats.TrackedReads++
		return true
	}
	return false
}

// OnPersist records a store arriving on the persist-path. specID is the
// speculation ID the store was tagged with (0 outside critical
// sections); pendingUntil is how long the write stays pending
// (buffered/coalescing) in the controller, which is how long its spec-ID
// remains visible to later arrivals. It performs both detections:
//
//   - load misspeculation: a persist to a block in Speculated state means
//     the earlier PM read fetched stale data (WriteBack→Read→Persist);
//   - store misspeculation: a tagged persist carrying a lower ID than a
//     pending tagged write to the same block arrived out of
//     happens-before order (missing update).
//
// It returns the detected violations (at most one of each kind).
func (b *Buffer) OnPersist(now sim.Time, a mem.Addr, specID uint64, pendingUntil sim.Time) []Misspeculation {
	b.Stats.Persists++
	b.sweep(now)
	blk := mem.BlockAlign(a)
	var out []Misspeculation

	// Store-misspeculation check against the pending-write spec-IDs.
	if specID != 0 {
		p, ok := b.pending[blk]
		if ok && p.expireAt <= now {
			ok = false
		}
		if ok && specID < p.specID {
			m := Misspeculation{Kind: StoreMisspec, Addr: blk, At: now, SeenID: p.specID, NewID: specID}
			b.Stats.StoreMisspecs++
			out = append(out, m)
		} else if !ok || specID > p.specID || pendingUntil > p.expireAt {
			id := specID
			if ok && p.specID > id {
				id = p.specID
			}
			exp := pendingUntil
			if ok && p.expireAt > exp {
				exp = p.expireAt
			}
			b.pending[blk] = pendingID{specID: id, expireAt: exp}
		}
		if len(b.pending) > 1024 {
			b.prunePending(now)
		}
	}

	// Load-misspeculation check against the eviction-driven entries.
	if e := b.find(blk); e != nil {
		switch e.State {
		case LoadSpeculated:
			m := Misspeculation{Kind: LoadMisspec, Addr: blk, At: now}
			b.Stats.LoadMisspecs++
			out = append(out, m)
			// The violation is handled by software; monitoring of this
			// block restarts from scratch.
			b.remove(blk)
		case LoadEvict:
			// The persist caught up with the evicted data: a subsequent
			// PM read returns fresh data, so monitoring ends. (Without
			// this deallocation, every write-allocate fetch that follows
			// a dirty eviction of the same block would be falsely
			// flagged by its own store's persist — contradicting the
			// paper's no-false-misspeculation property of the
			// eviction-based scheme. The cost is a narrow detection
			// hole with two racing in-flight persists; see DESIGN.md.)
			b.remove(blk)
		}
	}

	for _, m := range out {
		b.TL.InstantArg(m.At, b.Lane, "specbuf", m.Kind.String()+"_misspec", "block", int64(m.Addr))
		if b.OnMisspec != nil {
			b.OnMisspec(m)
		}
	}
	return out
}

func (b *Buffer) prunePending(now sim.Time) {
	for blk, p := range b.pending {
		if p.expireAt <= now {
			delete(b.pending, blk)
		}
	}
}

func (b *Buffer) remove(blk mem.Addr) {
	for i := range b.entries {
		if b.entries[i].Addr == blk {
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			b.Stats.Deallocs++
			return
		}
	}
}

// Publish copies the buffer's end-of-run statistics into the registry
// (accumulating across controllers).
func (b *Buffer) Publish(r *metrics.Registry) {
	s := &b.Stats
	r.Counter("specbuf", "load_misspecs").Add(s.LoadMisspecs)
	r.Counter("specbuf", "store_misspecs").Add(s.StoreMisspecs)
	r.Counter("specbuf", "expirations").Add(s.Expirations)
	r.Counter("specbuf", "overflows").Add(s.Overflows)
	r.Counter("specbuf", "writebacks").Add(s.WriteBacks)
	r.Counter("specbuf", "reads").Add(s.Reads)
	r.Counter("specbuf", "persists").Add(s.Persists)
	r.Counter("specbuf", "tracked_reads").Add(s.TrackedReads)
	r.Counter("specbuf", "to_evict").Add(s.ToEvict)
	r.Counter("specbuf", "to_speculated").Add(s.ToSpeculated)
	r.Counter("specbuf", "deallocs").Add(s.Deallocs)
	r.Gauge("specbuf", "peak_live").Observe(int64(s.PeakLive))
}
