package core

import (
	"testing"
	"testing/quick"

	"pmemspec/internal/mem"
	"pmemspec/internal/sim"
)

func newBuf(entries int, window sim.Time) *Buffer {
	return NewBuffer(Config{Entries: entries, Window: window})
}

func TestLoadMisspecPattern(t *testing.T) {
	// The canonical stale-read pattern (Figure 6a):
	// WriteBack → Read → Persist within the window ⇒ load misspeculation.
	b := newBuf(4, 320)
	var got []Misspeculation
	b.OnMisspec = func(m Misspeculation) { got = append(got, m) }

	b.OnWriteBack(100, 0x1000)
	if !b.OnRead(150, 0x1010) { // same block, different offset
		t.Fatal("read of monitored block not tracked")
	}
	ms := b.OnPersist(200, 0x1000, 0, 200+188)
	if len(ms) != 1 || ms[0].Kind != LoadMisspec {
		t.Fatalf("OnPersist = %v, want one load misspeculation", ms)
	}
	if len(got) != 1 || got[0].Addr != 0x1000 || got[0].At != 200 {
		t.Errorf("interrupt payload = %v", got)
	}
	if b.Stats.LoadMisspecs != 1 {
		t.Errorf("LoadMisspecs = %d", b.Stats.LoadMisspecs)
	}
	// Entry released after detection.
	if _, ok := b.Lookup(201, 0x1000); ok {
		t.Error("entry survived misspeculation")
	}
}

func TestNoFalseMisspecOnWriteAllocate(t *testing.T) {
	// Figure 6b: a write-on-allocate fetch (Read with no prior
	// WriteBack) must not arm monitoring in the eviction-based scheme,
	// so the store's own persist triggers nothing.
	b := newBuf(4, 320)
	fired := false
	b.OnMisspec = func(Misspeculation) { fired = true }
	if b.OnRead(100, 0x2000) {
		t.Error("unmonitored read tracked in eviction-based mode")
	}
	b.OnPersist(150, 0x2000, 0, 150+188)
	if fired {
		t.Error("false misspeculation on write-allocate pattern")
	}
	if b.Stats.LoadMisspecs != 0 {
		t.Error("nonzero LoadMisspecs")
	}
}

func TestFetchBasedSchemeFlagsWriteAllocate(t *testing.T) {
	// The rejected §5.1.3 scheme flags exactly that pattern — this is
	// the ablation's false-misspeculation source.
	b := NewBuffer(Config{Entries: 4, Window: 320, FetchBased: true})
	if !b.OnRead(100, 0x2000) {
		t.Fatal("fetch-based scheme must track every PM read")
	}
	ms := b.OnPersist(150, 0x2000, 0, 150+188)
	if len(ms) != 1 || ms[0].Kind != LoadMisspec {
		t.Fatalf("fetch-based scheme missed the pattern: %v", ms)
	}
}

func TestWindowExpiryClearsMonitoring(t *testing.T) {
	b := newBuf(4, 320)
	b.OnWriteBack(100, 0x1000)
	b.OnRead(150, 0x1000)
	// Persist arrives after the window (150+320=470) expired.
	ms := b.OnPersist(500, 0x1000, 0, 500+188)
	if len(ms) != 0 {
		t.Errorf("misspeculation after window expiry: %v", ms)
	}
	if b.Stats.Expirations == 0 {
		t.Error("no expiration recorded")
	}
}

func TestWindowRestartsAtRead(t *testing.T) {
	// §5.1.2: the window begins when the load arrives. A WriteBack long
	// before the read must not cause premature expiry.
	b := newBuf(4, 320)
	b.OnWriteBack(0, 0x1000)
	b.OnRead(300, 0x1000)                      // within writeback window; restarts window
	ms := b.OnPersist(600, 0x1000, 0, 600+188) // 300 cycles after read: in window
	if len(ms) != 1 {
		t.Errorf("persist at 600 after read at 300 not detected: %v", ms)
	}
}

func TestPersistInEvictEndsMonitoring(t *testing.T) {
	// A persist reaching a monitored (Evict) block ends monitoring: a
	// subsequent fetch returns fresh data, and the fetch of a later
	// store miss must not be falsely flagged by that store's own
	// persist (the paper's no-false-misspeculation property).
	b := newBuf(4, 320)
	b.OnWriteBack(100, 0x1000)
	b.OnPersist(120, 0x1000, 0, 120+188)
	if b.OnRead(140, 0x1000) {
		t.Fatal("read tracked after the persist caught up")
	}
	if ms := b.OnPersist(160, 0x1000, 0, 160+188); len(ms) != 0 {
		t.Fatalf("false misspeculation: %v", ms)
	}
}

func TestKnownDetectionHoleTwoInflightPersists(t *testing.T) {
	// Documented limitation of the paper's eviction-based automaton
	// (see DESIGN.md): with two persists in flight to one block, the
	// first persist deallocates the entry, so a stale read taken before
	// the second persist goes undetected.
	b := newBuf(4, 320)
	b.OnWriteBack(100, 0x1000)
	b.OnPersist(120, 0x1000, 0, 308) // store 1 lands, monitoring ends
	b.OnRead(140, 0x1000)            // stale w.r.t. store 2 — unmonitored
	if ms := b.OnPersist(160, 0x1000, 0, 348); len(ms) != 0 {
		t.Fatalf("unexpectedly detected (update this test and DESIGN.md): %v", ms)
	}
}

func TestStoreMisspecLowerIDDetected(t *testing.T) {
	b := newBuf(4, 320)
	// Thread with spec-ID 7 persists first (out of order), then the
	// happens-before-earlier thread with ID 5 arrives.
	b.OnPersist(100, 0x3000, 7, 100+300)
	ms := b.OnPersist(150, 0x3000, 5, 150+300)
	if len(ms) != 1 || ms[0].Kind != StoreMisspec {
		t.Fatalf("OnPersist = %v, want store misspeculation", ms)
	}
	if ms[0].SeenID != 7 || ms[0].NewID != 5 {
		t.Errorf("IDs = %d/%d, want 7/5", ms[0].SeenID, ms[0].NewID)
	}
	if b.Stats.StoreMisspecs != 1 {
		t.Errorf("StoreMisspecs = %d", b.Stats.StoreMisspecs)
	}
}

func TestStoreMisspecInOrderOK(t *testing.T) {
	b := newBuf(4, 320)
	b.OnPersist(100, 0x3000, 5, 400)
	if ms := b.OnPersist(150, 0x3000, 7, 450); len(ms) != 0 {
		t.Errorf("in-order tagged persists flagged: %v", ms)
	}
	// Same ID again (same critical section) is fine too.
	if ms := b.OnPersist(160, 0x3000, 7, 460); len(ms) != 0 {
		t.Errorf("same-ID persist flagged: %v", ms)
	}
}

func TestUntaggedPersistsNeverStoreMisspec(t *testing.T) {
	b := newBuf(4, 320)
	b.OnPersist(100, 0x3000, 5, 400)
	if ms := b.OnPersist(150, 0x3000, 0, 150+188); len(ms) != 0 {
		t.Errorf("untagged persist flagged: %v", ms)
	}
}

func TestStoreMisspecAfterPendingRetiredMissed(t *testing.T) {
	// Once the earlier write has fully retired from the controller its
	// spec-ID is gone; the paper argues conflicting accesses race within
	// a short interval, so this is safe.
	b := newBuf(4, 320)
	b.OnPersist(100, 0x3000, 7, 288) // retired by t=288
	if ms := b.OnPersist(1000, 0x3000, 5, 1188); len(ms) != 0 {
		t.Errorf("detection after retirement: %v", ms)
	}
}

func TestOverflowPausesAndReplacesOldest(t *testing.T) {
	b := newBuf(2, 320)
	var stallUntil sim.Time
	b.OnOverflow = func(until sim.Time) { stallUntil = until }
	b.OnWriteBack(100, 0x1000)
	b.OnWriteBack(110, 0x2000)
	b.OnWriteBack(120, 0x3000) // full: oldest (0x1000, ins 100) replaced
	if b.Stats.Overflows != 1 {
		t.Fatalf("Overflows = %d", b.Stats.Overflows)
	}
	if stallUntil != 100+320 {
		t.Errorf("stall until %d, want %d", stallUntil, 420)
	}
	if _, ok := b.Lookup(121, 0x1000); ok {
		t.Error("oldest entry still present after overflow replacement")
	}
	if _, ok := b.Lookup(121, 0x3000); !ok {
		t.Error("new entry missing after overflow")
	}
}

func TestNoOverflowWhenExpiredEntriesExist(t *testing.T) {
	b := newBuf(2, 320)
	b.OnOverflow = func(sim.Time) { t.Error("unexpected overflow") }
	b.OnWriteBack(0, 0x1000)
	b.OnWriteBack(10, 0x2000)
	b.OnWriteBack(500, 0x3000) // both earlier entries expired
	if b.Stats.Overflows != 0 {
		t.Errorf("Overflows = %d", b.Stats.Overflows)
	}
}

func TestPeakLiveTracksOccupancy(t *testing.T) {
	b := newBuf(8, 1000)
	for i := 0; i < 5; i++ {
		b.OnWriteBack(sim.Time(i), mem.Addr(0x1000+i*64))
	}
	if b.Stats.PeakLive != 5 {
		t.Errorf("PeakLive = %d, want 5", b.Stats.PeakLive)
	}
	if b.Live(2000) != 0 {
		t.Error("entries survived expiry sweep")
	}
}

func TestWriteBackRefreshesExistingEntry(t *testing.T) {
	b := newBuf(4, 320)
	b.OnWriteBack(100, 0x1000)
	b.OnRead(150, 0x1000) // Speculated
	b.OnWriteBack(200, 0x1000)
	e, ok := b.Lookup(201, 0x1000)
	if !ok || e.State != LoadEvict || e.Inserted != 200 {
		t.Errorf("entry after re-writeback = %+v", e)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{{Entries: 0, Window: 10}, {Entries: 4, Window: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBuffer(%+v) did not panic", cfg)
				}
			}()
			NewBuffer(cfg)
		}()
	}
}

func TestKindAndStateStrings(t *testing.T) {
	if LoadMisspec.String() != "load" || StoreMisspec.String() != "store" {
		t.Error("Kind strings")
	}
	if LoadEvict.String() != "Evict" || LoadSpeculated.String() != "Speculated" || LoadIdle.String() != "Idle" {
		t.Error("LoadState strings")
	}
}

// TestDetectionCompleteness is the paper's key safety property: any
// WriteBack→Read→Persist sequence on one block where the persist lands
// within one window of the read is detected, regardless of interleaved
// traffic on other blocks (as long as the buffer does not overflow).
func TestDetectionCompleteness(t *testing.T) {
	f := func(noise []uint8, gapWB, gapRD uint8) bool {
		window := sim.Time(320)
		b := newBuf(16, window)
		detected := false
		b.OnMisspec = func(m Misspeculation) {
			if m.Kind == LoadMisspec && m.Addr == 0x8000 {
				detected = true
			}
		}
		now := sim.Time(0)
		wb := now
		b.OnWriteBack(wb, 0x8000)
		// Interleave noise traffic on other blocks. The noise must fit
		// inside the monitored block's window: the paper's guarantee is
		// exactly that racing accesses occur within one speculation
		// window (§5.1.2), so the read below stays within wb+window.
		for i, n := range noise {
			if now+8 >= wb+window/2 {
				break
			}
			now += sim.Time(n % 8)
			a := mem.Addr(0x1000 + uint64(n)*64)
			switch i % 3 {
			case 0:
				b.OnWriteBack(now, a)
			case 1:
				b.OnRead(now, a)
			case 2:
				b.OnPersist(now, a, 0, now+188)
			}
		}
		rd := now + sim.Time(gapWB)%(wb+window-now) // < wb+window
		b.OnRead(rd, 0x8000)
		ps := rd + sim.Time(gapRD)%window // within the window of the read
		b.OnPersist(ps, 0x8000, 0, ps+188)
		// An overflow would have replaced the monitored entry; in the
		// real machine an overflow stalls every core (no competing
		// traffic can flow), so overflow-free is this unit-level
		// property's precondition.
		return detected || b.Stats.Overflows > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSpecIDMonotonicityProperty: replaying tagged persists in
// happens-before order (non-decreasing IDs per block) never raises a
// store misspeculation.
func TestSpecIDMonotonicityProperty(t *testing.T) {
	f := func(ids []uint8) bool {
		b := newBuf(8, 10_000)
		last := uint64(0)
		now := sim.Time(0)
		for _, d := range ids {
			last += uint64(d%4) + 1 // strictly increasing
			now += 5
			if ms := b.OnPersist(now, 0x4000, last, now+300); len(ms) != 0 {
				return false
			}
		}
		return b.Stats.StoreMisspecs == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// One writeback gap case the automaton must handle: Read long after the
// WriteBack's window expired is not tracked (entry gone), so a
// subsequent persist is silent. This mirrors the paper's argument that
// conflicts happen within a short interval.
func TestReadAfterWriteBackExpiry(t *testing.T) {
	b := newBuf(4, 320)
	b.OnWriteBack(0, 0x1000)
	if b.OnRead(1000, 0x1000) {
		t.Error("read tracked after monitoring expired")
	}
	if ms := b.OnPersist(1010, 0x1000, 0, 1010+188); len(ms) != 0 {
		t.Errorf("persist flagged after expiry: %v", ms)
	}
}
