package pmc

import (
	"fmt"

	"pmemspec/internal/mem"
	"pmemspec/internal/metrics"
	"pmemspec/internal/sim"
)

// WPQ models the controller's write-pending queue — Intel's ADR
// persistent domain. A write is durable the moment it is *admitted* to
// the WPQ (§8.1: "All stores to PM from the persist-path will be durable
// once they appear at the PM controller"); the media write then drains
// in the background at Table 3's 94 ns through the controller's write
// banks. Admission is what every design's durability barrier waits for:
// post-ADR CLWB completion (IntelX86), persist-buffer drain (HOPS/DPO),
// and persist-path arrival (PMEM-Spec).
//
// The queue has bounded occupancy (64 entries, Table 3): when it is full,
// admission stalls until a media write completes and frees a slot —
// that back-pressure is the only way PM write bandwidth reaches the
// cores. Writes to a block already pending in the queue coalesce ("the
// PM controller … coalesces and buffers the store data").
type WPQ struct {
	cap  int
	ctrl *Controller
	// completions holds the media completion times of entries currently
	// occupying the queue (pruned lazily against the query time).
	// minDone caches their minimum (sim.Forever when empty) so the
	// common no-entry-retired case skips the compaction scan.
	completions []sim.Time
	minDone     sim.Time
	// blocks holds, per PM block, the media completion of its pending
	// entry (coalescing) — a flat array indexed by block number, so the
	// per-store lookup is a shift instead of a map probe. Zero means "no
	// live entry" (media completions are always positive). Together with
	// liveList this reproduces the bounded tracking-table semantics
	// exactly: once more than 8192 entries are live, stale ones are
	// dropped (reset to zero), and a dropped entry cannot coalesce even
	// for a lagging caller whose `now` still precedes its completion
	// (Accept tolerates small time inversions, so that case is reachable
	// and observable).
	blocks   []sim.Time
	liveList []uint32
	base     mem.Addr

	// Stats
	Accepts, Coalesced, FullStalls uint64
	StallTime                      sim.Time
	// PeakOccupancy is the largest number of simultaneously pending
	// entries observed.
	PeakOccupancy int

	// OccHist, when set, observes the queue occupancy after every
	// admission (nil-safe: unset costs one nil check per accept).
	OccHist *metrics.Histogram

	// OnAdmit, when set, observes every admission (including coalesced
	// ones) with its admission time — the instant the write becomes
	// durable under ADR. Crash campaigns align fault-injection points to
	// these boundaries.
	OnAdmit func(admit sim.Time, blk mem.Addr)
}

// NewWPQ creates a write-pending queue of the given capacity in front of
// ctrl's media write banks. The queue serves the PM region
// [base, base+memBytes): its per-block coalescing table is a flat array
// over that window.
func NewWPQ(ctrl *Controller, capacity int, base mem.Addr, memBytes uint64) *WPQ {
	if capacity < 1 {
		panic("pmc: WPQ capacity must be ≥ 1")
	}
	nblocks := (memBytes + mem.BlockSize - 1) / mem.BlockSize
	return &WPQ{cap: capacity, ctrl: ctrl, blocks: make([]sim.Time, nblocks), base: base, minDone: sim.Forever}
}

// blockIndex maps a block-aligned address into the coalescing table.
func (w *WPQ) blockIndex(blk mem.Addr) uint64 {
	i := uint64(blk-w.base) / mem.BlockSize
	if blk < w.base || i >= uint64(len(w.blocks)) {
		panic(fmt.Sprintf("pmc: WPQ address %#x outside region [%#x,+%d blocks)", uint64(blk), uint64(w.base), len(w.blocks)))
	}
	return i
}

// Accept admits a write to blk arriving at the controller at time `now`.
// It returns the admission time (the durability point — equal to now
// unless the queue is full) and the media completion time. Callers must
// invoke Accept in approximately chronological order; the model tolerates
// small inversions.
func (w *WPQ) Accept(now sim.Time, blk mem.Addr) (admit, mediaDone sim.Time) {
	blk = mem.BlockAlign(blk)
	bi := w.blockIndex(blk)
	w.prune(now)
	if done := w.blocks[bi]; done > now {
		// Coalesce with the pending entry: durable immediately, no new
		// media write.
		w.Coalesced++
		if w.OnAdmit != nil {
			w.OnAdmit(now, blk)
		}
		return now, done
	}
	admit = now
	if len(w.completions) >= w.cap {
		// Wait until enough media writes retire to free a slot. The
		// queue never exceeds its capacity (each Accept prunes before
		// appending one entry), so the slot that frees first is simply
		// the minimum completion — kth-smallest selection is the
		// general case only if need > 1, which cannot happen here.
		need := len(w.completions) - w.cap + 1
		if need == 1 {
			admit = w.minDone
		} else {
			admit = kthSmallest(w.completions, need)
		}
		if admit < now {
			admit = now
		}
		w.FullStalls++
		w.StallTime += admit - now
		w.prune(admit)
	}
	mediaDone = w.ctrl.Write(admit)
	w.completions = append(w.completions, mediaDone)
	if mediaDone < w.minDone {
		w.minDone = mediaDone
	}
	if w.blocks[bi] == 0 {
		w.liveList = append(w.liveList, uint32(bi))
	}
	w.blocks[bi] = mediaDone
	w.Accepts++
	if len(w.completions) > w.PeakOccupancy {
		w.PeakOccupancy = len(w.completions)
	}
	w.OccHist.Observe(int64(len(w.completions)))
	if len(w.liveList) > 8192 {
		// Prune against admit, not now: on the full-queue stall path
		// admission advanced to admit > now, and entries already retired
		// by admit must become ineligible to coalesce — otherwise a
		// lagging store (Accept tolerates small time inversions) could
		// coalesce with an entry the stall already drained.
		w.pruneBlocks(admit)
	}
	if w.OnAdmit != nil {
		w.OnAdmit(admit, blk)
	}
	return admit, mediaDone
}

// pruneBlocks bounds the coalescing table's live set: entries whose media
// completion has passed are dropped and become ineligible to coalesce
// with, even for a slightly-lagging later Accept.
func (w *WPQ) pruneBlocks(now sim.Time) {
	kept := w.liveList[:0]
	for _, bi := range w.liveList {
		if w.blocks[bi] <= now {
			w.blocks[bi] = 0
		} else {
			kept = append(kept, bi)
		}
	}
	w.liveList = kept
}

// kthSmallest returns the k-th smallest element of s (k ≥ 1). k is 1 on
// every reachable path (see Accept); the general branch is a defensive
// O(k·n) selection.
func kthSmallest(s []sim.Time, k int) sim.Time {
	if k == 1 {
		min := s[0]
		for _, c := range s[1:] {
			if c < min {
				min = c
			}
		}
		return min
	}
	picked := sim.Time(-1 << 62)
	for ; k > 0; k-- {
		best := sim.Forever
		for _, c := range s {
			if c > picked && c < best {
				best = c
			}
		}
		picked = best
	}
	return picked
}

// Occupancy returns the number of entries pending at time now.
func (w *WPQ) Occupancy(now sim.Time) int {
	w.prune(now)
	return len(w.completions)
}

func (w *WPQ) prune(now sim.Time) {
	if w.minDone > now {
		return // nothing has retired since the last prune
	}
	kept := w.completions[:0]
	min := sim.Forever
	for _, c := range w.completions {
		if c > now {
			kept = append(kept, c)
			if c < min {
				min = c
			}
		}
	}
	w.completions = kept
	w.minDone = min
}

// Publish copies the queue's end-of-run statistics into the registry,
// accumulating (so multiple controllers' queues sum into one component).
func (w *WPQ) Publish(r *metrics.Registry) {
	r.Counter("wpq", "accepts").Add(w.Accepts)
	r.Counter("wpq", "coalesced").Add(w.Coalesced)
	r.Counter("wpq", "full_stalls").Add(w.FullStalls)
	r.Counter("wpq", "stall_cycles").Add(uint64(w.StallTime))
	r.Gauge("wpq", "peak_occupancy").Observe(int64(w.PeakOccupancy))
}
