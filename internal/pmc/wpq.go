package pmc

import (
	"sort"

	"pmemspec/internal/mem"
	"pmemspec/internal/metrics"
	"pmemspec/internal/sim"
)

// WPQ models the controller's write-pending queue — Intel's ADR
// persistent domain. A write is durable the moment it is *admitted* to
// the WPQ (§8.1: "All stores to PM from the persist-path will be durable
// once they appear at the PM controller"); the media write then drains
// in the background at Table 3's 94 ns through the controller's write
// banks. Admission is what every design's durability barrier waits for:
// post-ADR CLWB completion (IntelX86), persist-buffer drain (HOPS/DPO),
// and persist-path arrival (PMEM-Spec).
//
// The queue has bounded occupancy (64 entries, Table 3): when it is full,
// admission stalls until a media write completes and frees a slot —
// that back-pressure is the only way PM write bandwidth reaches the
// cores. Writes to a block already pending in the queue coalesce ("the
// PM controller … coalesces and buffers the store data").
type WPQ struct {
	cap  int
	ctrl *Controller
	// completions holds the media completion times of entries currently
	// occupying the queue (pruned lazily against the query time).
	completions []sim.Time
	// blocks maps a pending block to its media completion (coalescing).
	blocks map[mem.Addr]sim.Time

	// Stats
	Accepts, Coalesced, FullStalls uint64
	StallTime                      sim.Time
	// PeakOccupancy is the largest number of simultaneously pending
	// entries observed.
	PeakOccupancy int

	// OccHist, when set, observes the queue occupancy after every
	// admission (nil-safe: unset costs one nil check per accept).
	OccHist *metrics.Histogram

	// OnAdmit, when set, observes every admission (including coalesced
	// ones) with its admission time — the instant the write becomes
	// durable under ADR. Crash campaigns align fault-injection points to
	// these boundaries.
	OnAdmit func(admit sim.Time, blk mem.Addr)
}

// NewWPQ creates a write-pending queue of the given capacity in front of
// ctrl's media write banks.
func NewWPQ(ctrl *Controller, capacity int) *WPQ {
	if capacity < 1 {
		panic("pmc: WPQ capacity must be ≥ 1")
	}
	return &WPQ{cap: capacity, ctrl: ctrl, blocks: make(map[mem.Addr]sim.Time)}
}

// Accept admits a write to blk arriving at the controller at time `now`.
// It returns the admission time (the durability point — equal to now
// unless the queue is full) and the media completion time. Callers must
// invoke Accept in approximately chronological order; the model tolerates
// small inversions.
func (w *WPQ) Accept(now sim.Time, blk mem.Addr) (admit, mediaDone sim.Time) {
	blk = mem.BlockAlign(blk)
	w.prune(now)
	if done, ok := w.blocks[blk]; ok && done > now {
		// Coalesce with the pending entry: durable immediately, no new
		// media write.
		w.Coalesced++
		if w.OnAdmit != nil {
			w.OnAdmit(now, blk)
		}
		return now, done
	}
	admit = now
	if len(w.completions) >= w.cap {
		// Wait until enough media writes retire to free a slot.
		need := len(w.completions) - w.cap + 1
		sort.Slice(w.completions, func(i, j int) bool { return w.completions[i] < w.completions[j] })
		admit = w.completions[need-1]
		if admit < now {
			admit = now
		}
		w.FullStalls++
		w.StallTime += admit - now
		w.prune(admit)
	}
	mediaDone = w.ctrl.Write(admit)
	w.completions = append(w.completions, mediaDone)
	w.blocks[blk] = mediaDone
	w.Accepts++
	if len(w.completions) > w.PeakOccupancy {
		w.PeakOccupancy = len(w.completions)
	}
	w.OccHist.Observe(int64(len(w.completions)))
	if len(w.blocks) > 8192 {
		w.pruneBlocks(now)
	}
	if w.OnAdmit != nil {
		w.OnAdmit(admit, blk)
	}
	return admit, mediaDone
}

// Occupancy returns the number of entries pending at time now.
func (w *WPQ) Occupancy(now sim.Time) int {
	w.prune(now)
	return len(w.completions)
}

func (w *WPQ) prune(now sim.Time) {
	kept := w.completions[:0]
	for _, c := range w.completions {
		if c > now {
			kept = append(kept, c)
		}
	}
	w.completions = kept
}

func (w *WPQ) pruneBlocks(now sim.Time) {
	for b, c := range w.blocks {
		if c <= now {
			delete(w.blocks, b)
		}
	}
}

// Publish copies the queue's end-of-run statistics into the registry,
// accumulating (so multiple controllers' queues sum into one component).
func (w *WPQ) Publish(r *metrics.Registry) {
	r.Counter("wpq", "accepts").Add(w.Accepts)
	r.Counter("wpq", "coalesced").Add(w.Coalesced)
	r.Counter("wpq", "full_stalls").Add(w.FullStalls)
	r.Counter("wpq", "stall_cycles").Add(uint64(w.StallTime))
	r.Gauge("wpq", "peak_occupancy").Observe(int64(w.PeakOccupancy))
}
