package pmc

import (
	"pmemspec/internal/mem"
	"pmemspec/internal/sim"
)

// PersistBuffer is the per-core buffer beside the L1 cache that HOPS and
// DPO use to hold PM stores until they are flushed to the controller
// (Figure 1a/1b of the PMEM-Spec paper). Stores append in program
// order; the buffer drains asynchronously into the controller's WPQ
// (the durability point under ADR):
//
//   - HOPS (epoch persistency): entries within one epoch drain
//     concurrently; an ofence closes the epoch and orders it before the
//     next; a dfence stalls the thread until everything appended so far
//     is admitted.
//   - DPO (buffered strict persistency): every store is its own epoch
//     and DPO "allows only a single flush to the persistent memory
//     controller at once" — flushes serialize globally through the
//     Serializer, each occupying the path for one transfer time.
//
// A full buffer stalls the appending store until the oldest entry drains.
type PersistBuffer struct {
	core     int
	capacity int
	kernel   *sim.Kernel
	wpq      *WPQ
	transfer sim.Time    // store-to-controller bus latency
	ser      *Serializer // non-nil: DPO global one-flush-at-a-time

	epoch uint64
	// lastBlk is the block of the newest append (DPO same-line
	// coalescing: consecutive stores to one line ride one flush).
	lastBlk mem.Addr
	// prevEpochsAdmit is the latest admission among closed epochs;
	// entries of the open epoch may not be admitted before it.
	prevEpochsAdmit sim.Time
	// curEpochAdmit is the latest admission within the open epoch.
	curEpochAdmit sim.Time
	// entries holds the stores still in the buffer, payload inline, in
	// append order. Drain events find their entry by admission time
	// (first match = append order = event order for equal times), so no
	// per-store closure or payload copy is allocated.
	entries []pbEntry

	// onDrain is invoked (event context) when an entry is admitted to
	// the WPQ: the payload is durable there.
	onDrain func(addr mem.Addr, data []byte, at sim.Time)

	// Stats
	Appends, Drains, CapacityStalls uint64
}

// Serializer is DPO's global flush token: only one persist-buffer entry
// may be in flight to the controller at a time across all cores. Share
// one Serializer among every core's buffer.
type Serializer struct {
	next     sim.Time
	interval sim.Time
}

// NewSerializer creates the DPO flush token; interval is how long one
// flush occupies the path to the controller.
func NewSerializer(interval sim.Time) *Serializer {
	return &Serializer{interval: interval}
}

// acquire reserves the next flush slot at or after `ready`.
func (s *Serializer) acquire(ready sim.Time) sim.Time {
	if s.next > ready {
		ready = s.next
	}
	s.next = ready + s.interval
	return ready
}

// NewPersistBuffer creates a buffer for core with the given capacity.
// transfer is the store-to-controller bus latency; a non-nil ser selects
// DPO's globally serialized per-store ordering. onDrain receives each
// drained entry at its admission time.
func NewPersistBuffer(k *sim.Kernel, wpq *WPQ, core, capacity int, transfer sim.Time, ser *Serializer, onDrain func(mem.Addr, []byte, sim.Time)) *PersistBuffer {
	if capacity < 1 {
		panic("pmc: persist buffer capacity must be ≥ 1")
	}
	return &PersistBuffer{
		core:     core,
		capacity: capacity,
		kernel:   k,
		wpq:      wpq,
		transfer: transfer,
		ser:      ser,
		onDrain:  onDrain,
	}
}

// pbEntry is one buffered store: admission time plus the payload held
// inline (stores are ≤ 8 bytes after store-queue splitting).
type pbEntry struct {
	admit sim.Time
	addr  mem.Addr
	n     uint8
	data  [8]byte
}

// Full reports whether the buffer has no free entry.
func (b *PersistBuffer) Full() bool { return len(b.entries) >= b.capacity }

// NextFree returns the earliest time an in-flight entry drains — when a
// stalled store may retry. Only meaningful while entries are pending.
func (b *PersistBuffer) NextFree() sim.Time {
	if len(b.entries) == 0 {
		return 0
	}
	min := b.entries[0].admit
	for i := 1; i < len(b.entries); i++ {
		if v := b.entries[i].admit; v < min {
			min = v
		}
	}
	return min
}

// Append enqueues a store (addr, payload) at time now and schedules its
// drain. The caller must ensure the buffer is not Full (stalling the
// thread to NextFree() first); appending to a full buffer panics.
// It returns the admission (durability) time.
func (b *PersistBuffer) Append(now sim.Time, addr mem.Addr, data []byte) sim.Time {
	if b.Full() {
		panic("pmc: Append to full persist buffer")
	}
	b.Appends++
	start := now + b.transfer
	if b.ser != nil {
		// DPO: per-store ordering (every store its own epoch) and one
		// flush to the controller at a time globally. Consecutive
		// stores to the same cache line coalesce into one flush — the
		// persist buffer holds line-granular entries.
		blk := mem.BlockAlign(addr)
		if blk == b.lastBlk && b.curEpochAdmit >= start {
			start = b.curEpochAdmit
		} else {
			if b.curEpochAdmit > start {
				start = b.curEpochAdmit
			}
			start = b.ser.acquire(start)
		}
		b.lastBlk = blk
	} else if b.prevEpochsAdmit > start {
		// HOPS: ordered after every closed epoch's admissions.
		start = b.prevEpochsAdmit
	}
	admit, _ := b.wpq.Accept(start, addr)
	if admit > b.curEpochAdmit {
		b.curEpochAdmit = admit
	}
	e := pbEntry{admit: admit, addr: addr}
	e.n = uint8(copy(e.data[:], data))
	if int(e.n) != len(data) {
		panic("pmc: persist-buffer payload exceeds one store")
	}
	b.entries = append(b.entries, e)
	b.kernel.ScheduleHandler(admit, b, uint64(admit))
	return admit
}

// OnEvent drains the oldest entry admitted at the event time
// (sim.Handler; arg echoes the admission time). Admissions within one
// buffer are not monotonic (epoch ordering can admit a later store
// earlier), so the drain is keyed rather than FIFO; first match in
// append order equals the legacy closure-per-store behavior because
// same-time events fire in schedule order.
func (b *PersistBuffer) OnEvent(at sim.Time, arg uint64) {
	admit := sim.Time(arg)
	for i := range b.entries {
		if b.entries[i].admit == admit {
			b.Drains++
			if b.onDrain != nil {
				e := &b.entries[i]
				b.onDrain(e.addr, e.data[:e.n], admit)
			}
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			return
		}
	}
	panic("pmc: persist-buffer drain event with no matching entry")
}

// OFence closes the current epoch (HOPS ofence): subsequent entries are
// ordered after everything appended so far. It is asynchronous — the
// calling thread does not stall.
func (b *PersistBuffer) OFence() {
	b.epoch++
	if b.curEpochAdmit > b.prevEpochsAdmit {
		b.prevEpochsAdmit = b.curEpochAdmit
	}
}

// DrainTime returns the time by which everything appended so far is
// admitted to the WPQ: a dfence stalls the thread until then.
func (b *PersistBuffer) DrainTime() sim.Time {
	if b.curEpochAdmit > b.prevEpochsAdmit {
		return b.curEpochAdmit
	}
	return b.prevEpochsAdmit
}

// Pending returns the number of entries still in the buffer.
func (b *PersistBuffer) Pending() int { return len(b.entries) }

// Epoch returns the current (open) epoch number.
func (b *PersistBuffer) Epoch() uint64 { return b.epoch }
