package pmc

import (
	"pmemspec/internal/mem"
	"pmemspec/internal/sim"
)

// StrandBuffer is StrandWeaver's per-core buffer (Figure 1c of the
// PMEM-Spec paper): stores are appended to *strands* — independent
// ordering domains that drain to the controller concurrently. A
// persist-barrier orders later entries of the same strand after the
// earlier ones; entries of different strands are unordered, which is the
// extra concurrency strand persistency extracts beyond epochs. NewStrand
// "clears previous persist dependencies and appears in the persist-order
// as a new thread".
//
// Like the epoch persist buffer, capacity is bounded and a full buffer
// stalls the appending store; drains become durable at WPQ admission.
type StrandBuffer struct {
	core     int
	capacity int
	kernel   *sim.Kernel
	wpq      *WPQ
	transfer sim.Time

	// nextStrand allocates strand ids; strands holds each live strand's
	// ordering state: entries between two persist-barriers are unordered
	// among themselves, but may not be admitted before the previous
	// barrier's horizon.
	nextStrand uint64
	strands    map[uint64]*strandState
	// allAdmit is the latest admission across every strand (JoinStrand
	// waits for it).
	allAdmit sim.Time
	// entries holds the stores still in the buffer, payload inline,
	// keyed by admission time like PersistBuffer.entries.
	entries []pbEntry

	onDrain func(addr mem.Addr, data []byte, at sim.Time)

	// Stats
	Appends, Drains, Barriers, Strands uint64
}

// NewStrandBuffer creates a strand buffer for core.
func NewStrandBuffer(k *sim.Kernel, wpq *WPQ, core, capacity int, transfer sim.Time, onDrain func(mem.Addr, []byte, sim.Time)) *StrandBuffer {
	if capacity < 1 {
		panic("pmc: strand buffer capacity must be ≥ 1")
	}
	return &StrandBuffer{
		core:     core,
		capacity: capacity,
		kernel:   k,
		wpq:      wpq,
		transfer: transfer,
		strands:  map[uint64]*strandState{},
		onDrain:  onDrain,
	}
}

// strandState tracks one strand's ordering.
type strandState struct {
	// barrier is the admission horizon the strand's next entries must
	// respect (set by the last persist-barrier).
	barrier sim.Time
	// sinceBarrier is the latest admission since that barrier.
	sinceBarrier sim.Time
}

// NewStrand opens a fresh strand (no ordering dependencies) and returns
// its id.
func (b *StrandBuffer) NewStrand() uint64 {
	b.Strands++
	b.nextStrand++
	return b.nextStrand
}

// PersistBarrier orders subsequent entries of the strand after everything
// appended to it so far (asynchronous; the core does not stall).
func (b *StrandBuffer) PersistBarrier(strand uint64) {
	b.Barriers++
	if st, ok := b.strands[strand]; ok && st.sinceBarrier > st.barrier {
		st.barrier = st.sinceBarrier
	}
}

// Full reports whether the buffer has no free entry.
func (b *StrandBuffer) Full() bool { return len(b.entries) >= b.capacity }

// NextFree returns the earliest in-flight admission (retry time while
// Full).
func (b *StrandBuffer) NextFree() sim.Time {
	if len(b.entries) == 0 {
		return 0
	}
	min := b.entries[0].admit
	for i := 1; i < len(b.entries); i++ {
		if v := b.entries[i].admit; v < min {
			min = v
		}
	}
	return min
}

// Append enqueues a store on the given strand at time now and returns
// its admission (durability) time. The caller must respect Full.
func (b *StrandBuffer) Append(now sim.Time, strand uint64, addr mem.Addr, data []byte) sim.Time {
	if b.Full() {
		panic("pmc: Append to full strand buffer")
	}
	b.Appends++
	st := b.strands[strand]
	if st == nil {
		st = &strandState{}
		b.strands[strand] = st
	}
	start := now + b.transfer
	if st.barrier > start {
		start = st.barrier
	}
	admit, _ := b.wpq.Accept(start, addr)
	if admit > st.sinceBarrier {
		st.sinceBarrier = admit
	}
	if admit > b.allAdmit {
		b.allAdmit = admit
	}
	e := pbEntry{admit: admit, addr: addr}
	e.n = uint8(copy(e.data[:], data))
	if int(e.n) != len(data) {
		panic("pmc: strand-buffer payload exceeds one store")
	}
	b.entries = append(b.entries, e)
	b.kernel.ScheduleHandler(admit, b, uint64(admit))
	return admit
}

// OnEvent drains the oldest entry admitted at the event time
// (sim.Handler; arg echoes the admission time — see
// PersistBuffer.OnEvent for why the drain is keyed).
func (b *StrandBuffer) OnEvent(at sim.Time, arg uint64) {
	admit := sim.Time(arg)
	for i := range b.entries {
		if b.entries[i].admit == admit {
			b.Drains++
			if b.onDrain != nil {
				e := &b.entries[i]
				b.onDrain(e.addr, e.data[:e.n], admit)
			}
			b.entries = append(b.entries[:i], b.entries[i+1:]...)
			return
		}
	}
	panic("pmc: strand-buffer drain event with no matching entry")
}

// JoinTime returns the time by which every strand's entries so far are
// admitted — what a JoinStrand (durability point) waits for. Joined
// strands are retired.
func (b *StrandBuffer) JoinTime() sim.Time {
	for s := range b.strands {
		delete(b.strands, s)
	}
	return b.allAdmit
}

// Pending returns the number of in-flight entries.
func (b *StrandBuffer) Pending() int { return len(b.entries) }
