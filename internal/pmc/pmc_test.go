package pmc

import (
	"testing"
	"testing/quick"

	"pmemspec/internal/mem"
	"pmemspec/internal/sim"
)

func TestControllerReadTiming(t *testing.T) {
	c := NewController(DefaultConfig())
	done := c.Read(0)
	if done != sim.NS(175) {
		t.Errorf("first read done at %v, want 175ns", done)
	}
	if c.Stats.Reads != 1 {
		t.Errorf("Reads = %d", c.Stats.Reads)
	}
}

func TestControllerWriteTiming(t *testing.T) {
	c := NewController(DefaultConfig())
	if done := c.Write(100); done != 100+sim.NS(94) {
		t.Errorf("write done at %v", done)
	}
}

func TestControllerBankQueueing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReadBanks = 2
	c := NewController(cfg)
	// Three simultaneous reads on two banks: the third queues.
	d1 := c.Read(0)
	d2 := c.Read(0)
	d3 := c.Read(0)
	if d1 != sim.NS(175) || d2 != sim.NS(175) {
		t.Errorf("parallel reads done at %v, %v", d1, d2)
	}
	if d3 != 2*sim.NS(175) {
		t.Errorf("queued read done at %v, want 350ns", d3)
	}
	if c.Stats.ReadQueueDelay != sim.NS(175) {
		t.Errorf("queue delay = %v", c.Stats.ReadQueueDelay)
	}
}

func TestControllerSingleBankSerializesWrites(t *testing.T) {
	// DPO's one-flush-at-a-time behaviour.
	cfg := DefaultConfig()
	cfg.WriteBanks = 1
	c := NewController(cfg)
	d1 := c.Write(0)
	d2 := c.Write(0)
	if d2 != d1+sim.NS(94) {
		t.Errorf("second write done at %v, want serialized %v", d2, d1+sim.NS(94))
	}
}

func TestControllerServiceMonotonicProperty(t *testing.T) {
	c := NewController(DefaultConfig())
	f := func(gaps []uint8) bool {
		now := sim.Time(0)
		for _, g := range gaps {
			now += sim.Time(g)
			if c.Read(now) < now+c.Config().ReadLatency {
				return false // service can never beat the media latency
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBloomInsertCheckRemove(t *testing.T) {
	b := NewBloom(1024, 4)
	a := mem.Addr(0x1000)
	if got := b.Check(a, 100); got != 100 {
		t.Errorf("clean filter delayed read to %v", got)
	}
	b.Insert(a, 500)
	if got := b.Check(a, 100); got != 500 {
		t.Errorf("conflicting read resumes at %v, want 500", got)
	}
	// After the drain horizon the conflict no longer delays.
	if got := b.Check(a, 600); got != 600 {
		t.Errorf("read after drain horizon delayed to %v", got)
	}
	b.Remove(a)
	if got := b.Check(a, 100); got != 100 {
		t.Errorf("removed entry still delays to %v", got)
	}
	if b.Lookups != 4 || b.Conflicts != 2 {
		t.Errorf("lookups=%d conflicts=%d", b.Lookups, b.Conflicts)
	}
}

func TestBloomCountsNeverNegativeProperty(t *testing.T) {
	b := NewBloom(64, 4)
	f := func(addrs []uint8) bool {
		for _, raw := range addrs {
			a := mem.Addr(raw) * 64
			b.Insert(a, 100)
			b.Remove(a)
		}
		// A fully drained filter must be conflict-free for every address.
		for i := 0; i < 256; i++ {
			if b.Check(mem.Addr(i*64), 0) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBloomFalsePositivePossible(t *testing.T) {
	// With a tiny filter, some unrelated address must conflict — HOPS's
	// false positives delay innocent reads.
	b := NewBloom(2, 4)
	b.Insert(0x1000, 900)
	falsePositive := false
	for i := 1; i < 64 && !falsePositive; i++ {
		a := mem.Addr(0x1000 + i*64)
		if b.Check(a, 0) > 0 {
			falsePositive = true
		}
	}
	if !falsePositive {
		t.Error("expected at least one false positive in a 2-bucket filter")
	}
}

func newTestBufferEnv(strict bool, capacity int) (*sim.Kernel, *Controller, *PersistBuffer, *[]mem.Addr) {
	k := sim.NewKernel()
	ctrl := NewController(DefaultConfig())
	wpq := NewWPQ(ctrl, 64, 0, 1<<16)
	drained := &[]mem.Addr{}
	var ser *Serializer
	if strict {
		ser = NewSerializer(sim.NS(11))
	}
	buf := NewPersistBuffer(k, wpq, 0, capacity, sim.NS(20), ser, func(a mem.Addr, d []byte, at sim.Time) {
		*drained = append(*drained, a)
	})
	return k, ctrl, buf, drained
}

func TestPersistBufferDrainDeliversPayload(t *testing.T) {
	k := sim.NewKernel()
	ctrl := NewController(DefaultConfig())
	wpq := NewWPQ(ctrl, 64, 0, 1<<16)
	var gotAddr mem.Addr
	var gotData []byte
	var gotAt sim.Time
	buf := NewPersistBuffer(k, wpq, 0, 8, sim.NS(20), nil, func(a mem.Addr, d []byte, at sim.Time) {
		gotAddr, gotData, gotAt = a, d, at
	})
	done := buf.Append(0, 0x2000, []byte{1, 2, 3, 4})
	if want := sim.NS(20); done != want { // admission = durability (ADR)
		t.Errorf("drain done at %v, want %v", done, want)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if gotAddr != 0x2000 || string(gotData) != string([]byte{1, 2, 3, 4}) || gotAt != done {
		t.Errorf("drain callback got %#x % x @%v", uint64(gotAddr), gotData, gotAt)
	}
	if buf.Pending() != 0 || buf.Drains != 1 {
		t.Errorf("pending=%d drains=%d", buf.Pending(), buf.Drains)
	}
}

func TestPersistBufferEpochOrdering(t *testing.T) {
	k, _, buf, _ := newTestBufferEnv(false, 32)
	_ = k
	// Two entries in epoch 0 drain concurrently.
	d1 := buf.Append(0, 0x1000, []byte{1})
	d2 := buf.Append(0, 0x1040, []byte{2})
	if d2 != d1 {
		t.Errorf("same-epoch drains not concurrent: %v vs %v", d1, d2)
	}
	// ofence: the next entry may not be admitted before epoch 0's
	// admissions (same-instant admission is fine: WPQ entries apply in
	// append order).
	buf.OFence()
	d3 := buf.Append(0, 0x1080, []byte{3})
	if d3 < d1 {
		t.Errorf("post-ofence drain %v ordered before epoch 0 (%v)", d3, d1)
	}
	if buf.Epoch() != 1 {
		t.Errorf("epoch = %d", buf.Epoch())
	}
}

func TestPersistBufferStrictOrdersEveryStore(t *testing.T) {
	_, _, buf, _ := newTestBufferEnv(true, 32)
	d1 := buf.Append(0, 0x1000, []byte{1})
	d2 := buf.Append(0, 0x1040, []byte{2})
	if d2 <= d1 {
		t.Errorf("strict buffer drained concurrently: %v vs %v", d1, d2)
	}
}

func TestPersistBufferDrainTimeForDFence(t *testing.T) {
	_, _, buf, _ := newTestBufferEnv(false, 32)
	buf.Append(0, 0x1000, []byte{1})
	buf.OFence()
	d := buf.Append(100, 0x1040, []byte{2})
	if got := buf.DrainTime(); got != d {
		t.Errorf("DrainTime = %v, want %v", got, d)
	}
}

func TestPersistBufferCapacity(t *testing.T) {
	k, _, buf, drained := newTestBufferEnv(false, 2)
	buf.Append(0, 0x1000, []byte{1})
	buf.Append(0, 0x1040, []byte{2})
	if !buf.Full() {
		t.Fatal("buffer should be full")
	}
	if buf.NextFree() == 0 {
		t.Error("NextFree should report the head drain time")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if buf.Full() || len(*drained) != 2 {
		t.Errorf("after run: full=%v drained=%d", buf.Full(), len(*drained))
	}
}

func TestPersistBufferAppendFullPanics(t *testing.T) {
	_, _, buf, _ := newTestBufferEnv(false, 1)
	buf.Append(0, 0x1000, []byte{1})
	defer func() {
		if recover() == nil {
			t.Error("Append to full buffer did not panic")
		}
	}()
	buf.Append(0, 0x1040, []byte{2})
}

func TestPersistBufferPayloadCopied(t *testing.T) {
	k := sim.NewKernel()
	ctrl := NewController(DefaultConfig())
	var got []byte
	buf := NewPersistBuffer(k, NewWPQ(ctrl, 64, 0, 1<<16), 0, 8, sim.NS(20), nil, func(a mem.Addr, d []byte, at sim.Time) {
		got = d
	})
	payload := []byte{9, 9}
	buf.Append(0, 0x1000, payload)
	payload[0] = 0 // mutate after append
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 {
		t.Error("persist buffer aliased caller payload")
	}
}
