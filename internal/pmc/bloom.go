package pmc

import (
	"pmemspec/internal/mem"
	"pmemspec/internal/sim"
)

// Bloom is the counting bloom filter HOPS places in the PM controller
// (§5.1.1 of the PMEM-Spec paper, after HOPS): it tracks the addresses of
// blocks currently sitting in the per-core persist buffers. Every PM
// load must consult the filter (costing extra cycles); a hit — true or
// false positive — postpones the read until the conflicting persists
// have drained.
//
// Each bucket keeps both an occupancy count and the latest drain
// completion time of entries hashed into it, so a conflicting read knows
// how long to wait; a false positive waits on exactly the same
// information, which reproduces HOPS's behaviour of delaying reads on
// filter conflicts regardless of whether the conflict is real.
type Bloom struct {
	buckets []bloomBucket
	mask    uint64

	// LookupCost is charged to every PM load (extra cycles in the
	// controller's critical path).
	LookupCost sim.Time

	// Stats
	Lookups, Conflicts uint64
}

type bloomBucket struct {
	count     int
	drainedBy sim.Time
}

// NewBloom creates a filter with nbuckets (power of two) and the given
// per-load lookup cost.
func NewBloom(nbuckets int, lookupCost sim.Time) *Bloom {
	if nbuckets <= 0 || nbuckets&(nbuckets-1) != 0 {
		panic("pmc: bloom bucket count must be a positive power of two")
	}
	return &Bloom{
		buckets:    make([]bloomBucket, nbuckets),
		mask:       uint64(nbuckets - 1),
		LookupCost: lookupCost,
	}
}

// two cheap independent hashes of the block address.
func (b *Bloom) idx(a mem.Addr) (uint64, uint64) {
	x := uint64(mem.BlockAlign(a)) >> 6
	h1 := x * 0x9E3779B97F4A7C15
	h2 := (x ^ 0xD6E8FEB86659FD93) * 0xBF58476D1CE4E5B9
	return (h1 >> 16) & b.mask, (h2 >> 16) & b.mask
}

// Insert records a block entering a persist buffer; drainBy is the
// current estimate of when it will reach PM.
func (b *Bloom) Insert(a mem.Addr, drainBy sim.Time) {
	i, j := b.idx(a)
	b.add(i, drainBy)
	if j != i {
		b.add(j, drainBy)
	}
}

func (b *Bloom) add(i uint64, drainBy sim.Time) {
	b.buckets[i].count++
	if drainBy > b.buckets[i].drainedBy {
		b.buckets[i].drainedBy = drainBy
	}
}

// Remove records a block leaving a persist buffer (drain complete).
func (b *Bloom) Remove(a mem.Addr) {
	i, j := b.idx(a)
	b.buckets[i].count--
	if j != i {
		b.buckets[j].count--
	}
}

// Check consults the filter for a PM load at time now. It returns the
// time the load may proceed: now (plus nothing — the caller charges
// LookupCost separately) when the filter is clean, or the conflicting
// buckets' drain horizon on a hit.
func (b *Bloom) Check(a mem.Addr, now sim.Time) sim.Time {
	b.Lookups++
	i, j := b.idx(a)
	hit := b.buckets[i].count > 0 && b.buckets[j].count > 0
	if !hit {
		return now
	}
	b.Conflicts++
	wait := b.buckets[i].drainedBy
	if b.buckets[j].drainedBy < wait {
		wait = b.buckets[j].drainedBy
	}
	if wait < now {
		return now
	}
	return wait
}
