// Package pmc models the persistent-memory controller: the service
// timing of PM reads and writes (Table 3: 175 ns read, 94 ns write,
// 32/64-entry read/write queues), the ADR persistent domain (a write
// that reaches the controller is durable), and the controller-resident
// structures the evaluated designs add — PMEM-Spec's speculation buffer
// (held by the machine layer, fed through this package's ingest
// methods) and HOPS's bloom filter (bloom.go).
package pmc

import (
	"fmt"

	"pmemspec/internal/metrics"
	"pmemspec/internal/sim"
)

// Config parameterizes the controller's service model.
type Config struct {
	// ReadLatency is the PM media read latency (175 ns).
	ReadLatency sim.Time
	// WriteLatency is the PM media write latency (94 ns).
	WriteLatency sim.Time
	// ReadBanks and WriteBanks bound the number of concurrently serviced
	// requests of each kind; additional requests queue. They stand in
	// for the paper's 32/64-entry read/write queues: the queues bound
	// occupancy while the banks bound service parallelism.
	ReadBanks, WriteBanks int
}

// DefaultConfig returns the Table 3 controller configuration.
func DefaultConfig() Config {
	return Config{
		ReadLatency:  sim.NS(175),
		WriteLatency: sim.NS(94),
		ReadBanks:    8,
		WriteBanks:   8,
	}
}

// Stats counts controller traffic.
type Stats struct {
	Reads, Writes   uint64
	ReadQueueDelay  sim.Time // cumulative time read requests waited for a bank
	WriteQueueDelay sim.Time
}

// Controller is the PM controller's timing model. All methods must be
// called from simulation context (thread or event); the kernel
// serializes them.
type Controller struct {
	cfg       Config
	readFree  []sim.Time // per-bank next-free times
	writeFree []sim.Time
	// Stats is the controller's traffic record.
	Stats Stats
}

// NewController returns a controller with the given configuration.
func NewController(cfg Config) *Controller {
	if cfg.ReadLatency <= 0 || cfg.WriteLatency <= 0 || cfg.ReadBanks < 1 || cfg.WriteBanks < 1 {
		panic(fmt.Sprintf("pmc: bad config %+v", cfg))
	}
	return &Controller{
		cfg:       cfg,
		readFree:  make([]sim.Time, cfg.ReadBanks),
		writeFree: make([]sim.Time, cfg.WriteBanks),
	}
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Read allocates a read-service slot for a request arriving at `now` and
// returns the completion time (data available to the cache hierarchy).
func (c *Controller) Read(now sim.Time) sim.Time {
	bank := earliest(c.readFree)
	start := now
	if c.readFree[bank] > start {
		start = c.readFree[bank]
	}
	c.Stats.ReadQueueDelay += start - now
	done := start + c.cfg.ReadLatency
	c.readFree[bank] = done
	c.Stats.Reads++
	return done
}

// Write allocates a write-service slot for data arriving at `now` and
// returns the time the media write completes. Note that under ADR the
// data is *durable* at arrival (the controller's write queue is inside
// the persistent domain); the completion time only matters for
// bandwidth/backpressure.
func (c *Controller) Write(now sim.Time) sim.Time {
	bank := earliest(c.writeFree)
	start := now
	if c.writeFree[bank] > start {
		start = c.writeFree[bank]
	}
	c.Stats.WriteQueueDelay += start - now
	done := start + c.cfg.WriteLatency
	c.writeFree[bank] = done
	c.Stats.Writes++
	return done
}

// Publish copies the controller's end-of-run traffic statistics into the
// registry (accumulating across controllers).
func (c *Controller) Publish(r *metrics.Registry) {
	r.Counter("pm", "reads").Add(c.Stats.Reads)
	r.Counter("pm", "writes").Add(c.Stats.Writes)
	r.Counter("pm", "read_queue_delay_cycles").Add(uint64(c.Stats.ReadQueueDelay))
	r.Counter("pm", "write_queue_delay_cycles").Add(uint64(c.Stats.WriteQueueDelay))
}

func earliest(banks []sim.Time) int {
	best := 0
	for i := 1; i < len(banks); i++ {
		if banks[i] < banks[best] {
			best = i
		}
	}
	return best
}
