package pmc

import (
	"testing"

	"pmemspec/internal/mem"
	"pmemspec/internal/sim"
)

func TestWPQAdmissionImmediateWhenNotFull(t *testing.T) {
	w := NewWPQ(NewController(DefaultConfig()), 64, 0, 1<<16)
	admit, done := w.Accept(100, 0x1000)
	if admit != 100 {
		t.Errorf("admit = %v, want 100 (ADR: durable at arrival)", admit)
	}
	if done != 100+sim.NS(94) {
		t.Errorf("media done = %v", done)
	}
}

func TestWPQCoalescesSameBlock(t *testing.T) {
	w := NewWPQ(NewController(DefaultConfig()), 64, 0, 1<<16)
	_, done1 := w.Accept(100, 0x1000)
	admit2, done2 := w.Accept(110, 0x1008) // same block, different offset
	if admit2 != 110 || done2 != done1 {
		t.Errorf("coalesced accept = (%v,%v), want (110,%v)", admit2, done2, done1)
	}
	if w.Coalesced != 1 || w.Accepts != 1 {
		t.Errorf("coalesced=%d accepts=%d", w.Coalesced, w.Accepts)
	}
	// After the media write retires, a new write to the block is a fresh
	// entry.
	admit3, done3 := w.Accept(done1+1, 0x1000)
	if admit3 != done1+1 || done3 == done1 {
		t.Error("post-retirement write should not coalesce")
	}
}

func TestWPQFullBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WriteBanks = 1 // serialize media to make completions predictable
	w := NewWPQ(NewController(cfg), 2, 0, 1<<16)
	a1, d1 := w.Accept(0, 0x0000) // media done 188
	a2, _ := w.Accept(0, 0x0040)  // media done 376
	if a1 != 0 || a2 != 0 {
		t.Fatalf("early admissions delayed: %v %v", a1, a2)
	}
	// Queue full: third write stalls until the first media write retires.
	a3, _ := w.Accept(0, 0x0080)
	if a3 != d1 {
		t.Errorf("admit under backpressure = %v, want %v", a3, d1)
	}
	if w.FullStalls != 1 || w.StallTime != d1 {
		t.Errorf("stalls=%d stallTime=%v", w.FullStalls, w.StallTime)
	}
}

func TestWPQOccupancyDrains(t *testing.T) {
	w := NewWPQ(NewController(DefaultConfig()), 64, 0, 1<<16)
	_, done := w.Accept(0, 0x0000)
	w.Accept(0, 0x0040)
	if got := w.Occupancy(1); got != 2 {
		t.Errorf("occupancy = %d, want 2", got)
	}
	if got := w.Occupancy(done + sim.NS(94)); got != 0 {
		t.Errorf("occupancy after retirement = %d, want 0", got)
	}
}

func TestWPQStallPathPrunesAgainstAdmit(t *testing.T) {
	// Regression: on the full-queue stall path admission advances to
	// admit > now, and the bounded coalescing table must be pruned
	// against admit — an entry whose media write already retired by the
	// admission instant is drained and must not coalesce a lagging
	// store, even though the caller's `now` still precedes its
	// completion (Accept tolerates small time inversions).
	w := NewWPQ(NewController(DefaultConfig()), 1, 0, 1<<20)
	// Fill the coalescing table past its 8192-entry bound with distinct
	// blocks. Capacity 1 makes every accept after the first stall, so
	// admission times race far ahead of the callers' now=0.
	var lastAdmit sim.Time
	for i := 0; i < 8194; i++ {
		lastAdmit, _ = w.Accept(0, mem.Addr(i*mem.BlockSize))
	}
	if w.Coalesced != 0 {
		t.Fatalf("distinct blocks coalesced %d times", w.Coalesced)
	}
	if lastAdmit == 0 {
		t.Fatal("fill never stalled; the stall path is not being exercised")
	}
	// Lagging store to block 0: its entry's media write completed ages
	// before the current admission point, so it must be a fresh
	// admission (stalled behind the one pending entry), not a coalesce
	// with drained state.
	admit, _ := w.Accept(0, 0)
	if w.Coalesced != 0 {
		t.Fatalf("lagging store coalesced with an entry already retired by the admission point (admit=%v)", admit)
	}
	if admit <= lastAdmit {
		t.Fatalf("probe admit = %v, want a stall past the previous admission %v", admit, lastAdmit)
	}
}
