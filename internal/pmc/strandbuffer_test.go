package pmc

import (
	"testing"

	"pmemspec/internal/mem"
	"pmemspec/internal/sim"
)

func newStrandEnv(capacity int) (*sim.Kernel, *StrandBuffer, *[]mem.Addr) {
	k := sim.NewKernel()
	ctrl := NewController(DefaultConfig())
	wpq := NewWPQ(ctrl, 64, 0, 1<<16)
	drained := &[]mem.Addr{}
	sb := NewStrandBuffer(k, wpq, 0, capacity, sim.NS(20), func(a mem.Addr, d []byte, at sim.Time) {
		*drained = append(*drained, a)
	})
	return k, sb, drained
}

func TestStrandsDrainIndependently(t *testing.T) {
	_, sb, _ := newStrandEnv(32)
	s1 := sb.NewStrand()
	s2 := sb.NewStrand()
	d1 := sb.Append(0, s1, 0x1000, []byte{1})
	sb.PersistBarrier(s1) // orders only strand 1
	d2 := sb.Append(0, s2, 0x2000, []byte{2})
	if d2 != d1 {
		t.Errorf("independent strands not concurrent: %v vs %v", d1, d2)
	}
	// Strand 1's next entry is ordered after its barrier…
	d3 := sb.Append(0, s1, 0x3000, []byte{3})
	if d3 < d1 {
		t.Errorf("same-strand post-barrier entry admitted early: %v < %v", d3, d1)
	}
}

func TestPersistBarrierOrdersWithinStrand(t *testing.T) {
	_, sb, _ := newStrandEnv(32)
	s := sb.NewStrand()
	d1 := sb.Append(0, s, 0x1000, []byte{1})
	d2 := sb.Append(0, s, 0x1040, []byte{2})
	// No barrier yet: unordered (same admission window).
	if d2 != d1 {
		t.Errorf("barrier-free same-strand entries serialized: %v vs %v", d1, d2)
	}
	sb.PersistBarrier(s)
	d3 := sb.Append(0, s, 0x1080, []byte{3})
	if d3 < d1 {
		t.Errorf("post-barrier entry %v before pre-barrier %v", d3, d1)
	}
}

func TestJoinTimeCoversAllStrands(t *testing.T) {
	k, sb, drained := newStrandEnv(32)
	var last sim.Time
	for i := 0; i < 4; i++ {
		s := sb.NewStrand()
		sb.PersistBarrier(s)
		d := sb.Append(sim.Time(i*5), s, mem.Addr(0x1000+i*64), []byte{byte(i)})
		if d > last {
			last = d
		}
	}
	if got := sb.JoinTime(); got != last {
		t.Errorf("JoinTime = %v, want %v", got, last)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(*drained) != 4 || sb.Pending() != 0 {
		t.Errorf("drained=%d pending=%d", len(*drained), sb.Pending())
	}
	if sb.Strands != 4 || sb.Barriers != 4 || sb.Appends != 4 {
		t.Errorf("stats: %d strands %d barriers %d appends", sb.Strands, sb.Barriers, sb.Appends)
	}
}

func TestStrandBufferCapacity(t *testing.T) {
	_, sb, _ := newStrandEnv(2)
	s := sb.NewStrand()
	sb.Append(0, s, 0x1000, []byte{1})
	sb.Append(0, s, 0x1040, []byte{2})
	if !sb.Full() {
		t.Fatal("buffer should be full")
	}
	if sb.NextFree() == 0 {
		t.Error("NextFree unset while full")
	}
	defer func() {
		if recover() == nil {
			t.Error("append to full strand buffer did not panic")
		}
	}()
	sb.Append(0, s, 0x1080, []byte{3})
}

func TestJoinResetsStrandState(t *testing.T) {
	_, sb, _ := newStrandEnv(32)
	s := sb.NewStrand()
	sb.Append(0, s, 0x1000, []byte{1})
	sb.PersistBarrier(s)
	sb.JoinTime()
	// A joined strand id reused afterwards starts unordered.
	d := sb.Append(0, s, 0x1040, []byte{2})
	if d != sim.NS(20) {
		t.Errorf("post-join append ordered against stale state: %v", d)
	}
}
