package fatomic

import (
	"fmt"

	"pmemspec/internal/core"
	"pmemspec/internal/machine"
	"pmemspec/internal/mem"
	"pmemspec/internal/osint"
	"pmemspec/internal/persist"
)

// Log-header words shared by the two runtimes (per-thread log region):
// +0 committed sequence, +8 applied sequence (redo only), +16 runtime
// mode. A zeroed header reads as the undo runtime, so legacy images
// recover unchanged.
const (
	hdrCommitted = 0
	hdrApplied   = 8
	hdrMode      = 16

	modeUndo = 0
	modeRedo = 1
)

// RedoRuntime is the transaction-based alternative to the undo-logging
// Runtime — the Mnemosyne/DudeTM shape the paper's §6.1.2 points at:
// writes are buffered in a volatile write set and appended to a redo
// log; nothing touches the data in place until the commit marker is
// durable, so aborting a transaction (the "naturally provided" abort
// handler) just discards the write set. Recovery replays the log of a
// committed-but-unapplied transaction; uncommitted logs are discarded.
//
// The ordering profile differs from undo logging: redo needs no
// per-store order barrier (entries only have to precede the commit
// marker), at the price of extra durability barriers at commit and
// write-set indirection on reads — which is why relaxed-model hardware
// favours it, while PMEM-Spec's free per-store ordering makes undo
// logging equally cheap (see BenchmarkLoggingStyles).
type RedoRuntime struct {
	m     *machine.Machine
	model persist.Model
	mode  Mode
	state []threadState

	// Stats is the runtime activity record.
	Stats Stats
}

// NewRedo creates a redo-logging runtime and registers its
// misspeculation handler with the OS.
func NewRedo(m *machine.Machine, model persist.Model, os *osint.OS, mode Mode) *RedoRuntime {
	r := &RedoRuntime{
		m:     m,
		model: model,
		mode:  mode,
		state: make([]threadState, m.Config().Cores),
	}
	for i := range r.state {
		r.state[i].nextSeq = 1
	}
	if os != nil {
		os.Register(1, m.Space().Base(), m.Space().Size(), r.onMisspec)
	}
	return r
}

// Model returns the instrumentation model in use.
func (r *RedoRuntime) Model() persist.Model { return r.model }

// WarmLog pre-faults the thread's log region and stamps it as a redo
// log for recovery dispatch.
func (r *RedoRuntime) WarmLog(t *machine.Thread) {
	base := logBase(r.m.Space().Base(), t.Core())
	for off := mem.Addr(0); off < LogRegionBytes; off += mem.BlockSize {
		t.StorePrivateU64(base+off, 0)
	}
	t.StorePrivateU64(base+hdrMode, modeRedo)
	r.model.Flush(t, base, mem.BlockSize)
	r.model.DurableBarrier(t)
	st := &r.state[t.Core()]
	if committed := t.LoadU64(base + hdrCommitted); committed >= st.nextSeq {
		st.nextSeq = committed + 1
	}
}

func (r *RedoRuntime) onMisspec(core.Misspeculation) {
	r.Stats.MisspecSignals++
	for i := range r.state {
		if r.state[i].inFASE {
			r.state[i].misspec = true
		}
	}
}

// redoWrite is one buffered transactional write.
type redoWrite struct {
	addr mem.Addr
	data []byte
}

// Tx is a redo-logged transaction handle.
type Tx struct {
	r      *RedoRuntime
	t      *machine.Thread
	tid    int
	base   mem.Addr
	seq    uint64
	count  uint64
	writes []redoWrite
}

// Run executes body as a redo-logged transaction, re-executing it on a
// misspeculation abort. Nothing reaches the in-place data until the
// commit marker is durable.
func (r *RedoRuntime) Run(t *machine.Thread, body func(tx *Tx)) {
	tid := t.Core()
	st := &r.state[tid]
	for {
		st.misspec = false
		st.inFASE = true
		tx := &Tx{r: r, t: t, tid: tid, base: logBase(r.m.Space().Base(), tid), seq: st.nextSeq}
		st.nextSeq++
		committed := r.attemptTx(tx, body)
		st.inFASE = false
		if committed {
			r.Stats.FASEs++
			return
		}
		// Abort is free: the write set is volatile and the log entries
		// become garbage (their sequence never commits).
		r.Stats.Aborts++
	}
}

func (r *RedoRuntime) attemptTx(tx *Tx, body func(tx *Tx)) (committed bool) {
	t := tx.t
	defer func() {
		if rec := recover(); rec != nil {
			switch rec.(type) {
			case abortSignal:
				committed = false
			case *machine.Fault:
				if r.state[tx.tid].misspec {
					r.Stats.FaultsSuppressed++
					committed = false
					return
				}
				panic(rec)
			default:
				panic(rec)
			}
		}
	}()
	body(tx)
	// 1. Entries durable (they were only flushed, never ordered).
	r.model.DurableBarrier(t)
	if r.state[tx.tid].misspec {
		return false
	}
	// 2. Commit marker durable before any in-place write.
	t.StorePrivateU64(tx.base+hdrCommitted, tx.seq)
	r.model.Flush(t, tx.base, 8)
	r.model.DurableBarrier(t)
	// 3. Apply the write set in order; a crash here replays from the log.
	for _, w := range tx.writes {
		t.Store(w.addr, w.data)
		r.model.Flush(t, w.addr, len(w.data))
	}
	r.model.DurableBarrier(t)
	// 4. Retire the log (ordered, not awaited).
	t.StorePrivateU64(tx.base+hdrApplied, tx.seq)
	r.model.Flush(t, tx.base+hdrApplied, 8)
	r.model.OrderBarrier(t)
	return true
}

func (x *Tx) checkEager() {
	if x.r.mode == Eager && x.r.state[x.tid].misspec {
		panic(abortSignal{})
	}
}

// Thread returns the executing machine thread.
func (x *Tx) Thread() *machine.Thread { return x.t }

// Seq returns this attempt's sequence number (tests).
func (x *Tx) Seq() uint64 { return x.seq }

// Load reads PM, seeing the transaction's own buffered writes.
func (x *Tx) Load(a mem.Addr, p []byte) {
	x.checkEager()
	x.t.Load(a, p)
	// Overlay buffered writes in order (last write wins).
	for _, w := range x.writes {
		overlay(a, p, w.addr, w.data)
	}
}

// LoadU64 reads a u64 through the write set.
func (x *Tx) LoadU64(a mem.Addr) uint64 {
	var b [8]byte
	x.Load(a, b[:])
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// overlay copies the intersection of [wa, wa+len(wd)) into the read
// buffer window [a, a+len(p)).
func overlay(a mem.Addr, p []byte, wa mem.Addr, wd []byte) {
	lo, hi := a, a+mem.Addr(len(p))
	wlo, whi := wa, wa+mem.Addr(len(wd))
	if whi <= lo || wlo >= hi {
		return
	}
	if wlo < lo {
		wd = wd[lo-wlo:]
		wlo = lo
	}
	if whi > hi {
		wd = wd[:hi-wlo]
	}
	copy(p[wlo-lo:], wd)
}

// Store buffers a transactional write and appends it to the redo log.
// Unlike undo logging, no ordering barrier is needed per store.
func (x *Tx) Store(a mem.Addr, p []byte) {
	x.checkEager()
	for off := 0; off < len(p); {
		n := len(p) - off
		if n > MaxEntryData {
			n = MaxEntryData
		}
		x.storeOne(a+mem.Addr(off), p[off:off+n])
		off += n
	}
}

// StoreU64 buffers a u64 write.
func (x *Tx) StoreU64(a mem.Addr, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	x.Store(a, b[:])
}

// storeOne appends one log entry and flushes it. Ordering is deferred:
// redo entries only have to be durable before the commit marker, and
// attemptTx issues that single DurableBarrier — the scheme's whole
// point is avoiding a per-store fence. Both the coarse and the
// per-location analyzer would flag the flushed-but-unordered entries at
// return; the protocol orders them one call layer up.
//
//lint:allow barrierpair, persistflow
func (x *Tx) storeOne(a mem.Addr, p []byte) {
	if x.count >= EntryCap {
		panic(fmt.Sprintf("fatomic: transaction exceeded %d log entries", EntryCap))
	}
	t := x.t
	e := entryAddr(x.base, x.count)
	sum := entryChecksum(a, uint64(len(p)), x.seq, p)
	t.StorePrivateU64(e, uint64(a))
	t.StorePrivateU64(e+8, uint64(len(p)))
	t.StorePrivateU64(e+16, x.seq)
	t.StorePrivateU64(e+24, sum)
	t.StorePrivate(e+entryHdr, p)
	x.count++
	x.r.model.Flush(t, e, entryHdr+len(p))
	d := make([]byte, len(p))
	copy(d, p)
	x.writes = append(x.writes, redoWrite{addr: a, data: d})
}

// Abort aborts the transaction (free under redo logging).
func (x *Tx) Abort() {
	panic(abortSignal{})
}

// recoverRedoThread replays a committed-but-unapplied transaction from
// the redo log (or discards an uncommitted one) on the persisted image.
func recoverRedoThread(img *mem.Image, base mem.Addr) (entriesReplayed int, rolledBack bool, err error) {
	committed := img.ReadU64(base + hdrCommitted)
	applied := img.ReadU64(base + hdrApplied)
	if committed == applied {
		return 0, false, nil
	}
	if committed < applied {
		return 0, false, fmt.Errorf("fatomic: redo header corrupt (committed %d < applied %d)", committed, applied)
	}
	var buf [MaxEntryData]byte
	for i := uint64(0); i < EntryCap; i++ {
		e := entryAddr(base, i)
		addr := mem.Addr(img.ReadU64(e))
		n := img.ReadU64(e + 8)
		seq := img.ReadU64(e + 16)
		sum := img.ReadU64(e + 24)
		if n == 0 || n > MaxEntryData || seq != committed {
			break
		}
		img.Read(e+entryHdr, buf[:n])
		if entryChecksum(addr, n, seq, buf[:n]) != sum {
			// The marker is durable strictly after every entry, so a torn
			// entry under a committed sequence is corruption.
			return entriesReplayed, true, fmt.Errorf("fatomic: torn redo entry under committed sequence %d", committed)
		}
		if !img.Contains(addr, int(n)) {
			return entriesReplayed, true, fmt.Errorf("fatomic: redo entry targets %#x outside image", uint64(addr))
		}
		img.Write(addr, buf[:n])
		entriesReplayed++
	}
	img.WriteU64(base+hdrApplied, committed)
	return entriesReplayed, true, nil
}
