package fatomic

import (
	"errors"
	"fmt"
	"testing"

	"pmemspec/internal/core"
	"pmemspec/internal/machine"
	"pmemspec/internal/mem"
	"pmemspec/internal/osint"
	"pmemspec/internal/persist"
	"pmemspec/internal/sim"
)

type redoEnv struct {
	m  *machine.Machine
	os *osint.OS
	rt *RedoRuntime
}

func newRedoEnv(t *testing.T, d machine.Design, cores int, mode Mode) *redoEnv {
	t.Helper()
	cfg := machine.DefaultConfig(d, cores)
	cfg.MemBytes = 8 * 1024 * 1024
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	os := osint.New(m)
	rt := NewRedo(m, persist.ForDesign(d), os, mode)
	return &redoEnv{m: m, os: os, rt: rt}
}

func (e *redoEnv) heapBase() mem.Addr {
	return e.m.Space().Base() + mem.Addr(HeapReserve(e.m.Config().Cores))
}

func TestRedoCommitPersistsAllDesigns(t *testing.T) {
	for _, d := range machine.Designs {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			e := newRedoEnv(t, d, 1, Lazy)
			a := e.heapBase()
			e.m.Spawn("w", func(th *machine.Thread) {
				e.rt.WarmLog(th)
				e.rt.Run(th, func(tx *Tx) {
					tx.StoreU64(a, 0xAB)
					tx.StoreU64(a+64, 0xCD)
				})
			})
			if err := e.m.Run(); err != nil {
				t.Fatal(err)
			}
			pm := e.m.Space().PM
			if pm.ReadU64(a) != 0xAB || pm.ReadU64(a+64) != 0xCD {
				t.Error("committed transaction not durable")
			}
			if !AllCommitted(pm, 1) {
				t.Error("redo log not retired")
			}
		})
	}
}

func TestRedoReadsOwnWrites(t *testing.T) {
	e := newRedoEnv(t, machine.PMEMSpec, 1, Lazy)
	a := e.heapBase()
	e.m.Spawn("w", func(th *machine.Thread) {
		e.rt.WarmLog(th)
		th.StoreU64(a, 1)
		e.rt.Run(th, func(tx *Tx) {
			if got := tx.LoadU64(a); got != 1 {
				t.Errorf("pre-write read = %d", got)
			}
			tx.StoreU64(a, 2)
			if got := tx.LoadU64(a); got != 2 {
				t.Errorf("read-own-write = %d, want 2", got)
			}
			// In-place data must still be untouched pre-commit.
			if got := th.LoadU64(a); got != 1 {
				t.Errorf("in-place data = %d before commit", got)
			}
			// Partial overlay: byte write inside the word.
			tx.Store(a+3, []byte{0xFF})
			if got := tx.LoadU64(a); got != 2|0xFF<<24 {
				t.Errorf("overlayed read = %#x", got)
			}
		})
	})
	if err := e.m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRedoAbortIsFree(t *testing.T) {
	e := newRedoEnv(t, machine.PMEMSpec, 1, Lazy)
	a := e.heapBase()
	attempts := 0
	e.m.Spawn("w", func(th *machine.Thread) {
		e.rt.WarmLog(th)
		th.StoreU64(a, 7)
		th.SpecBarrier()
		e.rt.Run(th, func(tx *Tx) {
			attempts++
			tx.StoreU64(a, 50+uint64(attempts))
			if attempts == 1 {
				e.rt.onMisspec(core.Misspeculation{Kind: core.LoadMisspec, Addr: a})
			}
		})
	})
	if err := e.m.Run(); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 || e.rt.Stats.Aborts != 1 {
		t.Errorf("attempts=%d aborts=%d", attempts, e.rt.Stats.Aborts)
	}
	// The abort never wrote in place, so no undo traffic occurred.
	if e.rt.Stats.UndoneEntries != 0 {
		t.Errorf("redo abort undid %d entries", e.rt.Stats.UndoneEntries)
	}
	if got := e.m.Space().PM.ReadU64(a); got != 52 {
		t.Errorf("final value = %d, want 52", got)
	}
}

func TestRedoCrashBeforeMarkerDiscards(t *testing.T) {
	e := newRedoEnv(t, machine.PMEMSpec, 1, Lazy)
	a := e.heapBase()
	e.m.Spawn("w", func(th *machine.Thread) {
		e.rt.WarmLog(th)
		th.StoreU64(a, 1)
		th.StoreU64(a+8, 1)
		th.SpecBarrier()
		e.rt.Run(th, func(tx *Tx) {
			tx.StoreU64(a, 2)
			th.Work(sim.NS(300_000)) // crash lands mid-transaction
			tx.StoreU64(a+8, 2)
		})
	})
	// WarmLog's cold pre-faulting takes ~215µs of simulated time; the
	// crash must land inside the transaction's Work window after it.
	e.m.ScheduleCrash(sim.NS(320_000))
	if err := e.m.Run(); !errors.Is(err, machine.ErrCrashed) {
		t.Fatal(err)
	}
	img := e.m.Space().PM
	rep, err := Recover(img, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EntriesReplayed != 0 {
		t.Errorf("uncommitted transaction replayed %d entries", rep.EntriesReplayed)
	}
	if img.ReadU64(a) != 1 || img.ReadU64(a+8) != 1 {
		t.Error("uncommitted transaction leaked into PM")
	}
}

// TestRedoCrashSweepAtomicity mirrors the undo sweep: the x==y invariant
// must hold at every crash point — crashes after the marker replay
// forward, before it discard.
func TestRedoCrashSweepAtomicity(t *testing.T) {
	for _, d := range []machine.Design{machine.IntelX86, machine.PMEMSpec} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			for crashNS := int64(250_000); crashNS <= 500_000; crashNS += 19_777 {
				e := newRedoEnv(t, d, 1, Lazy)
				a := e.heapBase()
				e.m.Spawn("w", func(th *machine.Thread) {
					e.rt.WarmLog(th)
					for gen := uint64(1); gen <= 80; gen++ {
						e.rt.Run(th, func(tx *Tx) {
							for s := 0; s < 4; s++ {
								tx.StoreU64(a+mem.Addr(s*8), gen)
							}
						})
					}
				})
				e.m.ScheduleCrash(sim.NS(crashNS))
				err := e.m.Run()
				if err != nil && !errors.Is(err, machine.ErrCrashed) {
					t.Fatal(err)
				}
				img := e.m.Space().PM
				if _, err := Recover(img, 1); err != nil {
					t.Fatal(err)
				}
				v0 := img.ReadU64(a)
				for s := 1; s < 4; s++ {
					if v := img.ReadU64(a + mem.Addr(s*8)); v != v0 {
						t.Fatalf("crash@%dns: torn transaction after recovery (%d vs %d)", crashNS, v0, v)
					}
				}
			}
		})
	}
}

func TestRedoRecoverIdempotent(t *testing.T) {
	e := newRedoEnv(t, machine.PMEMSpec, 1, Lazy)
	a := e.heapBase()
	e.m.Spawn("w", func(th *machine.Thread) {
		e.rt.WarmLog(th)
		e.rt.Run(th, func(tx *Tx) {
			tx.StoreU64(a, 9)
		})
		th.Work(sim.NS(400_000))
	})
	e.m.ScheduleCrash(sim.NS(300_000))
	if err := e.m.Run(); !errors.Is(err, machine.ErrCrashed) {
		t.Fatal(err)
	}
	img := e.m.Space().PM
	if _, err := Recover(img, 1); err != nil {
		t.Fatal(err)
	}
	rep2, err := Recover(img, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.EntriesReplayed != 0 || rep2.ThreadsRolledBack != 0 {
		t.Errorf("second pass not a no-op: %+v", rep2)
	}
	if img.ReadU64(a) != 9 {
		t.Error("committed value lost")
	}
}

func TestRedoEagerAborts(t *testing.T) {
	e := newRedoEnv(t, machine.PMEMSpec, 1, Eager)
	a := e.heapBase()
	attempts, tails := 0, 0
	e.m.Spawn("w", func(th *machine.Thread) {
		e.rt.WarmLog(th)
		e.rt.Run(th, func(tx *Tx) {
			attempts++
			tx.StoreU64(a, uint64(attempts))
			if attempts == 1 {
				e.rt.onMisspec(core.Misspeculation{Kind: core.StoreMisspec, Addr: a})
			}
			tx.StoreU64(a+8, uint64(attempts)) // aborts here on attempt 1
			tails++
		})
	})
	if err := e.m.Run(); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 || tails != 1 {
		t.Errorf("attempts=%d tails=%d", attempts, tails)
	}
}

func TestOverlayWindows(t *testing.T) {
	cases := []struct {
		a      mem.Addr
		n      int
		wa     mem.Addr
		wd     []byte
		expect []byte
	}{
		{100, 4, 100, []byte{1, 2, 3, 4}, []byte{1, 2, 3, 4}}, // exact
		{100, 4, 98, []byte{9, 9, 5, 6}, []byte{5, 6, 0, 0}},  // left overlap
		{100, 4, 102, []byte{7, 8, 9}, []byte{0, 0, 7, 8}},    // right overlap
		{100, 4, 96, []byte{1, 2}, []byte{0, 0, 0, 0}},        // disjoint low
		{100, 4, 104, []byte{1, 2}, []byte{0, 0, 0, 0}},       // disjoint high
		{100, 4, 101, []byte{5, 6}, []byte{0, 5, 6, 0}},       // interior
		{100, 2, 98, []byte{1, 2, 3, 4, 5, 6}, []byte{3, 4}},  // covering
	}
	for i, c := range cases {
		p := make([]byte, c.n)
		overlay(c.a, p, c.wa, c.wd)
		if fmt.Sprint(p) != fmt.Sprint(c.expect) {
			t.Errorf("case %d: got %v, want %v", i, p, c.expect)
		}
	}
}

// TestUndoAndRedoAgree: the same transaction history through both
// runtimes yields identical durable state.
func TestUndoAndRedoAgree(t *testing.T) {
	final := func(redo bool) uint64 {
		var got uint64
		if redo {
			e := newRedoEnv(t, machine.PMEMSpec, 1, Lazy)
			a := e.heapBase()
			e.m.Spawn("w", func(th *machine.Thread) {
				e.rt.WarmLog(th)
				for i := uint64(1); i <= 20; i++ {
					e.rt.Run(th, func(tx *Tx) {
						tx.StoreU64(a, tx.LoadU64(a)+i)
					})
				}
			})
			if err := e.m.Run(); err != nil {
				t.Fatal(err)
			}
			got = e.m.Space().PM.ReadU64(a)
		} else {
			e := newEnv(t, machine.PMEMSpec, 1, Lazy)
			a := e.heapBase()
			e.m.Spawn("w", func(th *machine.Thread) {
				e.rt.WarmLog(th)
				for i := uint64(1); i <= 20; i++ {
					e.rt.Run(th, func(f *FASE) {
						f.StoreU64(a, f.LoadU64(a)+i)
					})
				}
			})
			if err := e.m.Run(); err != nil {
				t.Fatal(err)
			}
			got = e.m.Space().PM.ReadU64(a)
		}
		return got
	}
	u, r := final(false), final(true)
	if u != r || u != 210 {
		t.Errorf("undo=%d redo=%d, want 210", u, r)
	}
}
