package fatomic

import (
	"errors"
	"testing"

	"pmemspec/internal/core"
	"pmemspec/internal/machine"
	"pmemspec/internal/mem"
	"pmemspec/internal/sim"
)

func TestStagedCommitsAllStages(t *testing.T) {
	e := newEnv(t, machine.PMEMSpec, 1, Lazy)
	a := e.heapBase()
	e.m.Spawn("w", func(th *machine.Thread) {
		e.rt.RunStaged(th, []func(*FASE){
			func(f *FASE) { f.StoreU64(a, 1) },
			func(f *FASE) { f.StoreU64(a+8, 2) },
			func(f *FASE) { f.StoreU64(a+16, 3) },
		})
	})
	if err := e.m.Run(); err != nil {
		t.Fatal(err)
	}
	pm := e.m.Space().PM
	for i, want := range []uint64{1, 2, 3} {
		if got := pm.ReadU64(a + mem.Addr(i*8)); got != want {
			t.Errorf("slot %d = %d, want %d", i, got, want)
		}
	}
	if !AllCommitted(pm, 1) {
		t.Error("log live after staged commit")
	}
	if e.rt.Stats.FASEs != 1 {
		t.Errorf("FASEs = %d", e.rt.Stats.FASEs)
	}
}

func TestStagedRetriesOnlyInterruptedStage(t *testing.T) {
	e := newEnv(t, machine.PMEMSpec, 1, Lazy)
	a := e.heapBase()
	var runs [3]int
	e.m.Spawn("w", func(th *machine.Thread) {
		e.rt.RunStaged(th, []func(*FASE){
			func(f *FASE) { runs[0]++; f.StoreU64(a, 10) },
			func(f *FASE) {
				runs[1]++
				f.StoreU64(a+8, 20)
				if runs[1] == 1 {
					e.rt.onMisspec(core.Misspeculation{Kind: core.LoadMisspec, Addr: a})
				}
			},
			func(f *FASE) { runs[2]++; f.StoreU64(a+16, 30) },
		})
	})
	if err := e.m.Run(); err != nil {
		t.Fatal(err)
	}
	if runs != [3]int{1, 2, 1} {
		t.Errorf("stage runs = %v, want [1 2 1] (only stage 2 re-executed)", runs)
	}
	if e.rt.Stats.StageRetries != 1 {
		t.Errorf("StageRetries = %d", e.rt.Stats.StageRetries)
	}
	pm := e.m.Space().PM
	if pm.ReadU64(a) != 10 || pm.ReadU64(a+8) != 20 || pm.ReadU64(a+16) != 30 {
		t.Error("staged section final state wrong")
	}
}

func TestStagedRollbackRestoresStageStart(t *testing.T) {
	e := newEnv(t, machine.PMEMSpec, 1, Lazy)
	a := e.heapBase()
	attempt := 0
	e.m.Spawn("w", func(th *machine.Thread) {
		th.StoreU64(a, 100) // pre-section value
		th.SpecBarrier()
		e.rt.RunStaged(th, []func(*FASE){
			func(f *FASE) { f.StoreU64(a+8, 1) },
			func(f *FASE) {
				attempt++
				f.StoreU64(a, 200+uint64(attempt))
				if attempt == 1 {
					// Mid-stage the value is the first attempt's…
					e.rt.onMisspec(core.Misspeculation{Kind: core.StoreMisspec, Addr: a})
				} else {
					// …and on retry the stage starts from the restored
					// stage-entry state, with stage 1's write intact.
					if got := f.LoadU64(a + 8); got != 1 {
						t.Errorf("stage 1 effect lost across stage-2 retry: %d", got)
					}
				}
			},
		})
	})
	if err := e.m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.m.Space().PM.ReadU64(a); got != 202 {
		t.Errorf("final value = %d, want 202 (second attempt)", got)
	}
}

func TestStagedCrashIsAtomicAcrossStages(t *testing.T) {
	// Power failures still see one atomic section: crash inside stage 2
	// must roll back stage 1's effects too.
	for _, crashNS := range []int64{30_000, 60_000, 90_000, 120_000} {
		e := newEnv(t, machine.PMEMSpec, 1, Lazy)
		a := e.heapBase()
		e.m.Spawn("w", func(th *machine.Thread) {
			th.StoreU64(a, 1)
			th.StoreU64(a+8, 1)
			th.SpecBarrier()
			e.rt.RunStaged(th, []func(*FASE){
				func(f *FASE) {
					f.StoreU64(a, 2)
					f.Thread().Work(sim.NS(50_000))
				},
				func(f *FASE) {
					f.Thread().Work(sim.NS(50_000))
					f.StoreU64(a+8, 2)
				},
			})
		})
		e.m.ScheduleCrash(sim.NS(crashNS))
		err := e.m.Run()
		if err != nil && !errors.Is(err, machine.ErrCrashed) {
			t.Fatal(err)
		}
		img := e.m.Space().PM
		if _, err := Recover(img, 1); err != nil {
			t.Fatal(err)
		}
		x, y := img.ReadU64(a), img.ReadU64(a+8)
		if x != y {
			t.Fatalf("crash@%dns: stages torn after recovery: %d vs %d", crashNS, x, y)
		}
	}
}

func TestStagedFaultSuppression(t *testing.T) {
	e := newEnv(t, machine.PMEMSpec, 1, Lazy)
	a := e.heapBase()
	tries := 0
	e.m.Spawn("w", func(th *machine.Thread) {
		e.rt.RunStaged(th, []func(*FASE){
			func(f *FASE) {
				tries++
				f.StoreU64(a, 1)
				if tries == 1 {
					e.rt.onMisspec(core.Misspeculation{Kind: core.LoadMisspec, Addr: a})
					f.LoadU64(0xdead_0000_0000) // wild pointer from stale data
				}
			},
		})
	})
	if err := e.m.Run(); err != nil {
		t.Fatal(err)
	}
	if tries != 2 || e.rt.Stats.FaultsSuppressed != 1 {
		t.Errorf("tries=%d suppressed=%d", tries, e.rt.Stats.FaultsSuppressed)
	}
}

// TestStagedRecoveryCheaperThanMonolithic quantifies §6.3: with a long
// section split into stages, recovering from a misspeculation in the
// last stage re-executes far less work than re-running the whole body.
func TestStagedRecoveryCheaperThanMonolithic(t *testing.T) {
	const stageWork = 20_000 // ns of compute per stage
	const stageCnt = 8
	run := func(staged bool) sim.Time {
		e := newEnv(t, machine.PMEMSpec, 1, Lazy)
		a := e.heapBase()
		var clock sim.Time
		e.m.Spawn("w", func(th *machine.Thread) {
			injected := false
			stage := func(i int) func(*FASE) {
				return func(f *FASE) {
					f.StoreU64(a+mem.Addr(i*8), uint64(i))
					f.Thread().Work(sim.NS(stageWork))
					if i == stageCnt-1 && !injected {
						injected = true
						e.rt.onMisspec(core.Misspeculation{Kind: core.LoadMisspec, Addr: a})
					}
				}
			}
			if staged {
				var stages []func(*FASE)
				for i := 0; i < stageCnt; i++ {
					stages = append(stages, stage(i))
				}
				e.rt.RunStaged(th, stages)
			} else {
				e.rt.Run(th, func(f *FASE) {
					for i := 0; i < stageCnt; i++ {
						stage(i)(f)
					}
				})
			}
			clock = th.Clock()
		})
		if err := e.m.Run(); err != nil {
			t.Fatal(err)
		}
		return clock
	}
	mono := run(false)
	staged := run(true)
	t.Logf("monolithic: %v, staged: %v", mono, staged)
	// Monolithic re-executes all 8 stages (~16 stage-works total);
	// staged re-executes one (~9). Require a clear win.
	if staged*14 > mono*10 {
		t.Errorf("staged recovery (%v) not meaningfully cheaper than monolithic (%v)", staged, mono)
	}
}
