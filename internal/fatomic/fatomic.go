// Package fatomic is the failure-atomic runtime of §6: undo-logging
// FASEs (failure-atomic sections) over the simulated persistent memory,
// with the software support PMEM-Spec requires — per-thread
// misspeculation flags, an abort handler that erases intermediate
// volatile and non-volatile state and re-executes the interrupted FASE,
// lazy and eager recovery modes, and suppression of exceptions caused by
// consumed stale data (§6.2.1).
//
// The same FASE implementation runs on every evaluated design, with the
// ordering instrumentation of Figure 2 delegated to a persist.Model —
// per update: log entry → flush → order barrier → data write → flush →
// order barrier (CLWB+SFENCE twice on IntelX86/DPO, two ofences on HOPS,
// nothing on PMEM-Spec) — and a durability barrier at the section end.
//
// Undo-log entries are self-validating (sequence number + checksum), the
// standard torn-entry defence: no separate count word has to be ordered
// against the entry body. A section commits by persisting its sequence
// number into the log header; recovery undoes every valid entry whose
// sequence exceeds the committed one.
//
// PM layout (within the machine's PM region):
//
//	base + 0      OS designated space (one block)
//	base + 4096   per-thread undo logs, LogRegionBytes each:
//	                +0   committed FASE sequence (u64)
//	                +64  entries, EntrySize bytes each:
//	                       +0  target address (u64)
//	                       +8  length (u64)
//	                       +16 attempt sequence (u64)
//	                       +24 checksum (u64, FNV-1a over the above+data)
//	                       +32 prior data (up to MaxEntryData bytes)
//	heap …        everything after HeapReserve(threads)
package fatomic

import (
	"fmt"

	"pmemspec/internal/core"
	"pmemspec/internal/machine"
	"pmemspec/internal/mem"
	"pmemspec/internal/osint"
	"pmemspec/internal/persist"
)

// Log geometry.
const (
	// LogRegionBytes is each thread's undo-log area.
	LogRegionBytes = 64 * 1024
	// EntrySize is the stride between log entries.
	EntrySize = 128
	// MaxEntryData is the data payload capacity of one entry.
	MaxEntryData = 64
	// entryHdr is the entry header size (addr, len, seq, checksum).
	entryHdr = 32
	// logsOffset is where the per-thread logs start within PM.
	logsOffset = 4096
	// EntryCap is the number of entries one FASE may write.
	EntryCap = (LogRegionBytes - mem.BlockSize) / EntrySize
)

// HeapReserve returns how many bytes at the base of PM the runtime (and
// the OS designated space) occupy for nthreads; workload heaps must
// start past it.
func HeapReserve(nthreads int) uint64 {
	return logsOffset + uint64(nthreads)*LogRegionBytes
}

func logBase(pmBase mem.Addr, tid int) mem.Addr {
	return pmBase + logsOffset + mem.Addr(tid)*LogRegionBytes
}

func entryAddr(base mem.Addr, i uint64) mem.Addr {
	return base + mem.BlockSize + mem.Addr(i)*EntrySize
}

// entryChecksum is FNV-1a over (addr, len, seq, data): a torn or stale
// entry fails validation during recovery.
func entryChecksum(addr mem.Addr, n uint64, seq uint64, data []byte) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(v >> (8 * i)))
			h *= 1099511628211
		}
	}
	mix(uint64(addr))
	mix(n)
	mix(seq)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// Mode selects the misspeculation recovery scheme of §6.2.
type Mode int

const (
	// Lazy recovery checks the misspeculation flag at FASE commit and
	// suppresses exceptions caused by stale data meanwhile.
	Lazy Mode = iota
	// Eager recovery aborts at the first runtime-mediated operation
	// after the flag is raised.
	Eager
)

func (m Mode) String() string {
	if m == Eager {
		return "eager"
	}
	return "lazy"
}

// Stats counts runtime activity.
type Stats struct {
	FASEs            uint64
	Aborts           uint64
	FaultsSuppressed uint64
	MisspecSignals   uint64
	// LoadSignals/StoreSignals split MisspecSignals by violation kind
	// (stale load vs out-of-order persist) — the crash campaign's
	// injection report keys on them.
	LoadSignals   uint64
	StoreSignals  uint64
	StageRetries  uint64
	UndoneEntries uint64
}

type threadState struct {
	inFASE  bool
	misspec bool
	nextSeq uint64
}

// abortSignal unwinds a FASE body for re-execution.
type abortSignal struct{}

// Runtime is the failure-atomic runtime for one simulated process.
type Runtime struct {
	m     *machine.Machine
	model persist.Model
	mode  Mode
	state []threadState

	// Stats is the runtime activity record.
	Stats Stats
}

// New creates a runtime on machine m using the design's instrumentation
// model and registers its misspeculation handler with the OS (§6.1.2:
// the runtime registers its process with the OS interrupt handler).
func New(m *machine.Machine, model persist.Model, os *osint.OS, mode Mode) *Runtime {
	r := &Runtime{
		m:     m,
		model: model,
		mode:  mode,
		state: make([]threadState, m.Config().Cores),
	}
	for i := range r.state {
		r.state[i].nextSeq = 1
	}
	if os != nil {
		os.Register(1, m.Space().Base(), m.Space().Size(), r.onMisspec)
	}
	return r
}

// Model returns the instrumentation model in use.
func (r *Runtime) Model() persist.Model { return r.model }

// WarmLog pre-faults thread t's undo-log region, as real failure-atomic
// runtimes do at startup (e.g. Mnemosyne pre-faults its logs): the
// write-allocate misses of first touch belong to initialization, not to
// the measured kernel. The pre-fault stores are deliberately left
// unfenced: their values are dead, only the cache-line allocation
// matters.
//
//lint:allow barrierpair
func (r *Runtime) WarmLog(t *machine.Thread) {
	base := logBase(r.m.Space().Base(), t.Core())
	for off := mem.Addr(0); off < LogRegionBytes; off += mem.BlockSize {
		t.StorePrivateU64(base+off, 0)
	}
	st := &r.state[t.Core()]
	if committed := t.LoadU64(base); committed >= st.nextSeq {
		st.nextSeq = committed + 1
	}
}

// Mode returns the recovery mode.
func (r *Runtime) Mode() Mode { return r.mode }

// onMisspec is the misspeculation handler (§6.2): it flags every thread
// currently executing a FASE; threads outside FASEs are untouched.
func (r *Runtime) onMisspec(ms core.Misspeculation) {
	r.Stats.MisspecSignals++
	if ms.Kind == core.StoreMisspec {
		r.Stats.StoreSignals++
	} else {
		r.Stats.LoadSignals++
	}
	for i := range r.state {
		if r.state[i].inFASE {
			r.state[i].misspec = true
		}
	}
}

// FASE is the handle a failure-atomic section body uses for all PM
// access; its stores are undo-logged so the section can abort.
type FASE struct {
	r     *Runtime
	t     *machine.Thread
	tid   int
	base  mem.Addr // this thread's log base
	seq   uint64   // this attempt's sequence number
	count uint64   // entries appended by this attempt
}

// Run executes body as a failure-atomic section on thread t, re-executing
// it if a misspeculation (or a stale-data fault while one is pending)
// aborts it. The body must be re-executable: volatile intermediate state
// it computes must be derived from its captured inputs.
func (r *Runtime) Run(t *machine.Thread, body func(f *FASE)) {
	tid := t.Core()
	st := &r.state[tid]
	for {
		st.misspec = false
		st.inFASE = true
		f := &FASE{r: r, t: t, tid: tid, base: logBase(r.m.Space().Base(), tid), seq: st.nextSeq}
		st.nextSeq++
		committed := r.attempt(f, body)
		st.inFASE = false
		if committed {
			r.Stats.FASEs++
			return
		}
		r.Stats.Aborts++
		r.rollback(f)
	}
}

// attempt runs the body once and tries to commit. It reports false if
// the section must abort and re-execute.
func (r *Runtime) attempt(f *FASE, body func(f *FASE)) (committed bool) {
	t := f.t
	defer func() {
		if rec := recover(); rec != nil {
			switch rec.(type) {
			case abortSignal:
				committed = false
			case *machine.Fault:
				// A simulated segfault: if a misspeculation is pending,
				// the stale data caused it — suppress and abort
				// (§6.2.1). Otherwise it is a genuine program bug.
				if r.state[f.tid].misspec {
					r.Stats.FaultsSuppressed++
					committed = false
					return
				}
				panic(rec)
			default:
				panic(rec)
			}
		}
	}()
	body(f)
	// Commit. First the durability barrier: every data persist reaches
	// the persistent domain — which also means every misspeculation this
	// section's own persists could trigger has been detected and
	// delivered by now.
	r.model.DurableBarrier(t)
	if r.state[f.tid].misspec {
		// Lazy recovery: the flag check right before the FASE ends
		// (§6.2.1). Nothing is committed yet — the rollback undoes the
		// section.
		return false
	}
	// Persist the commit sequence, ordered behind everything above but
	// not awaited: a crash in this last transfer window rolls the
	// section back, which is indistinguishable from crashing an instant
	// before commit.
	t.StorePrivateU64(f.base, f.seq)
	r.model.Flush(t, f.base, 8)
	r.model.OrderBarrier(t)
	return true
}

// rollback undoes the aborted attempt: it restores the logged prior
// values in reverse order through the normal store path (erasing both
// the volatile cached state and, via the design's datapath, the
// non-volatile state). The entries become stale when a later attempt
// commits; they need no explicit truncation.
func (r *Runtime) rollback(f *FASE) {
	t := f.t
	var buf [MaxEntryData]byte
	for i := int64(f.count) - 1; i >= 0; i-- {
		e := entryAddr(f.base, uint64(i))
		addr := mem.Addr(t.LoadU64(e))
		n := t.LoadU64(e + 8)
		if n > MaxEntryData {
			panic(fmt.Sprintf("fatomic: corrupt log entry length %d", n))
		}
		t.Load(e+entryHdr, buf[:n])
		t.Store(addr, buf[:n])
		r.model.Flush(t, addr, int(n))
		r.Stats.UndoneEntries++
	}
	r.model.DurableBarrier(t)
}

// checkEager aborts immediately when eager recovery is selected and a
// misspeculation is pending.
func (f *FASE) checkEager() {
	if f.r.mode == Eager && f.r.state[f.tid].misspec {
		panic(abortSignal{})
	}
}

// Thread returns the executing machine thread (for compute delays etc.).
func (f *FASE) Thread() *machine.Thread { return f.t }

// Seq returns this attempt's sequence number (tests).
func (f *FASE) Seq() uint64 { return f.seq }

// Load reads PM inside the section.
func (f *FASE) Load(a mem.Addr, p []byte) {
	f.checkEager()
	f.t.Load(a, p)
}

// LoadU64 reads a u64 inside the section.
func (f *FASE) LoadU64(a mem.Addr) uint64 {
	f.checkEager()
	return f.t.LoadU64(a)
}

// Store writes PM inside the section with undo logging: the prior
// contents are logged and ordered before the data write, per the
// design's instrumentation (Figure 2).
func (f *FASE) Store(a mem.Addr, p []byte) {
	f.checkEager()
	for off := 0; off < len(p); {
		n := len(p) - off
		if n > MaxEntryData {
			n = MaxEntryData
		}
		f.storeOne(a+mem.Addr(off), p[off:off+n])
		off += n
	}
}

// StoreU64 writes a u64 inside the section with undo logging.
func (f *FASE) StoreU64(a mem.Addr, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	f.Store(a, b[:])
}

func (f *FASE) storeOne(a mem.Addr, p []byte) {
	if f.count >= EntryCap {
		panic(fmt.Sprintf("fatomic: FASE exceeded %d log entries", EntryCap))
	}
	t := f.t
	// 1. Log the prior value in a self-validating entry.
	var old [MaxEntryData]byte
	t.Load(a, old[:len(p)])
	e := entryAddr(f.base, f.count)
	sum := entryChecksum(a, uint64(len(p)), f.seq, old[:len(p)])
	t.StorePrivateU64(e, uint64(a))
	t.StorePrivateU64(e+8, uint64(len(p)))
	t.StorePrivateU64(e+16, f.seq)
	t.StorePrivateU64(e+24, sum)
	t.StorePrivate(e+entryHdr, old[:len(p)])
	f.count++
	// 2. Order the entry before the data write (one ordering point, as
	//    in Figure 2: clwb+sfence / ofence / nothing).
	f.r.model.Flush(t, e, entryHdr+len(p))
	f.r.model.OrderBarrier(t)
	// 3. The data write, flushed and ordered per update (Figure 2);
	//    NextUpdate closes the update (a fence on the epoch designs, a
	//    fresh strand on StrandWeaver).
	t.Store(a, p)
	f.r.model.Flush(t, a, len(p))
	f.r.model.NextUpdate(t)
}

// Abort aborts the current section programmatically (used by tests and
// by workloads that model explicit transaction aborts).
func (f *FASE) Abort() {
	panic(abortSignal{})
}
