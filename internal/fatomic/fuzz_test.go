package fatomic

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"pmemspec/internal/machine"
	"pmemspec/internal/mem"
	"pmemspec/internal/persist"
	"pmemspec/internal/sim"
)

// fuzzSpec describes one randomly generated FASE: the slots it writes
// and the tag value it writes everywhere (all-or-nothing observable).
type fuzzSpec struct {
	slots []int
	tag   uint64
}

// genFuzzSpecs builds, per thread, a deterministic random sequence of
// FASEs over a shared slot array. Tags are globally unique and nonzero.
func genFuzzSpecs(seed int64, threads, fases, slots int) [][]fuzzSpec {
	rng := rand.New(rand.NewSource(seed))
	tag := uint64(1)
	out := make([][]fuzzSpec, threads)
	for t := 0; t < threads; t++ {
		for f := 0; f < fases; f++ {
			n := rng.Intn(6) + 2
			spec := fuzzSpec{tag: tag<<8 | uint64(t)}
			tag++
			seen := map[int]bool{}
			for len(spec.slots) < n {
				s := rng.Intn(slots)
				if !seen[s] {
					seen[s] = true
					spec.slots = append(spec.slots, s)
				}
			}
			out[t] = append(out[t], spec)
		}
	}
	return out
}

// TestFuzzAtomicityUnderCrashes is the generic crash-atomicity fuzz:
// random lock-protected FASEs each stamp a random slot set with a unique
// tag; after a crash at a random point and recovery, every FASE must be
// all-or-nothing — for each tag, either every slot it wrote last still
// carries it, or none does. The check uses a replayable oracle: each
// slot's final value must be the tag of SOME FASE that wrote it (or the
// initial zero), and slot sets of applied tags must be consistent with a
// serial order.
//
// Since reconstructing the exact serialization is overkill, the fuzz
// asserts the simpler but sharp invariant built into the layout: a FASE
// writes tag to slot i AND mirror slot i+slots; torn application shows
// up as a slot whose mirror disagrees.
func TestFuzzAtomicityUnderCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep")
	}
	const (
		threads = 2
		fases   = 40
		slots   = 24
	)
	for _, d := range []machine.Design{machine.IntelX86, machine.HOPS, machine.PMEMSpec} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				for _, crashNS := range []int64{260_000, 300_000, 340_000, 380_000} {
					runFuzzCase(t, d, seed, crashNS, threads, fases, slots)
				}
			}
		})
	}
}

func runFuzzCase(t *testing.T, d machine.Design, seed, crashNS int64, threads, fases, slots int) {
	t.Helper()
	cfg := machine.DefaultConfig(d, threads)
	cfg.MemBytes = 16 << 20
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt := New(m, persist.ForDesign(d), nil, Lazy)
	base := m.Space().Base() + mem.Addr(HeapReserve(threads))
	slotAddr := func(i int) mem.Addr { return base + mem.Addr(i)*mem.BlockSize }
	specs := genFuzzSpecs(seed, threads, fases, slots)
	var lk sim.Mutex

	for tid := 0; tid < threads; tid++ {
		tid := tid
		m.Spawn(fmt.Sprintf("w%d", tid), func(th *machine.Thread) {
			rt.WarmLog(th)
			for _, spec := range specs[tid] {
				spec := spec
				th.Lock(&lk)
				rt.Run(th, func(f *FASE) {
					for _, s := range spec.slots {
						f.StoreU64(slotAddr(s), spec.tag)
						f.StoreU64(slotAddr(s+slots), spec.tag) // mirror
					}
				})
				th.Unlock(&lk)
			}
		})
	}
	m.ScheduleCrash(sim.NS(crashNS))
	err = m.Run()
	if err != nil && !errors.Is(err, machine.ErrCrashed) {
		t.Fatal(err)
	}
	img := m.Space().PM
	if _, err := Recover(img, threads); err != nil {
		t.Fatalf("%s seed %d crash@%dns: recovery: %v", d, seed, crashNS, err)
	}
	// Invariant 1: mirror agreement (no torn FASE).
	for s := 0; s < slots; s++ {
		a, b := img.ReadU64(slotAddr(s)), img.ReadU64(slotAddr(s+slots))
		if a != b {
			t.Fatalf("%s seed %d crash@%dns: slot %d torn (%#x vs mirror %#x)", d, seed, crashNS, s, a, b)
		}
	}
	// Invariant 2: every surviving value is a tag some FASE actually
	// wrote to that slot (or zero).
	valid := map[int]map[uint64]bool{}
	for tid := range specs {
		for _, spec := range specs[tid] {
			for _, s := range spec.slots {
				if valid[s] == nil {
					valid[s] = map[uint64]bool{0: true}
				}
				valid[s][spec.tag] = true
			}
		}
	}
	for s := 0; s < slots; s++ {
		v := img.ReadU64(slotAddr(s))
		if vs := valid[s]; vs != nil && !vs[v] {
			t.Fatalf("%s seed %d crash@%dns: slot %d holds %#x, never written there", d, seed, crashNS, s, v)
		}
	}
}
