package fatomic

import (
	"fmt"

	"pmemspec/internal/mem"
)

// RecoveryReport summarizes a post-crash recovery pass.
type RecoveryReport struct {
	// ThreadsRolledBack counts logs that held an incomplete section
	// (undo: rolled back; redo: replayed forward).
	ThreadsRolledBack int
	// EntriesUndone counts undo entries applied.
	EntriesUndone int
	// EntriesReplayed counts redo entries applied.
	EntriesReplayed int
}

// Recover runs the failure-recovery protocol against a persisted image
// (what survived the power failure). For each thread log it reads the
// committed sequence from the header and collects the prefix of valid
// entries carrying a higher sequence — they belong to attempts that
// never reached their durability point — then applies their prior
// values in reverse. Entries from earlier aborted attempts of the same
// section may appear behind the final attempt's entries; undoing them
// too is idempotent (they hold the same pre-section values).
//
// After Recover returns, the image reflects exactly the committed FASEs.
// This is the same protocol the runtime invokes for the paper's
// *virtual* power failures; here it runs host-side because the machine
// that crashed is gone.
func Recover(img *mem.Image, nthreads int) (RecoveryReport, error) {
	var rep RecoveryReport
	for tid := 0; tid < nthreads; tid++ {
		base := logBase(img.Base(), tid)
		if !img.Contains(base, LogRegionBytes) {
			return rep, fmt.Errorf("fatomic: log region for thread %d outside image", tid)
		}
		if img.ReadU64(base+hdrMode) == modeRedo {
			replayed, touched, err := recoverRedoThread(img, base)
			rep.EntriesReplayed += replayed
			if touched {
				rep.ThreadsRolledBack++
			}
			if err != nil {
				return rep, fmt.Errorf("fatomic: thread %d: %w", tid, err)
			}
			continue
		}
		committed := img.ReadU64(base)
		live, err := liveEntries(img, base, committed)
		if err != nil {
			return rep, fmt.Errorf("fatomic: thread %d: %w", tid, err)
		}
		if len(live) == 0 {
			continue
		}
		rep.ThreadsRolledBack++
		var buf [MaxEntryData]byte
		for i := len(live) - 1; i >= 0; i-- {
			e := live[i]
			addr := mem.Addr(img.ReadU64(e))
			n := img.ReadU64(e + 8)
			if !img.Contains(addr, int(n)) {
				return rep, fmt.Errorf("fatomic: thread %d entry targets %#x outside image", tid, uint64(addr))
			}
			img.Read(e+entryHdr, buf[:n])
			img.Write(addr, buf[:n])
			rep.EntriesUndone++
		}
		// Mark the section rolled back so a second recovery pass is a
		// no-op: the highest live sequence is now committed-as-undone.
		img.WriteU64(base, img.ReadU64(live[0]+16))
	}
	return rep, nil
}

// liveEntries returns the addresses of the leading valid entries whose
// sequence exceeds committed, in slot order.
func liveEntries(img *mem.Image, base mem.Addr, committed uint64) ([]mem.Addr, error) {
	var out []mem.Addr
	for i := uint64(0); i < EntryCap; i++ {
		e := entryAddr(base, i)
		addr := mem.Addr(img.ReadU64(e))
		n := img.ReadU64(e + 8)
		seq := img.ReadU64(e + 16)
		sum := img.ReadU64(e + 24)
		if n == 0 || n > MaxEntryData || seq <= committed {
			break
		}
		var buf [MaxEntryData]byte
		img.Read(e+entryHdr, buf[:n])
		if entryChecksum(addr, n, seq, buf[:n]) != sum {
			// Torn entry: the append in progress at the crash. Appends
			// are ordered, so nothing valid can follow.
			break
		}
		out = append(out, e)
	}
	return out, nil
}

// AllCommitted reports whether every thread log in the image is free of
// incomplete sections — no undo log with live entries, no redo log with
// an unapplied commit.
func AllCommitted(img *mem.Image, nthreads int) bool {
	for tid := 0; tid < nthreads; tid++ {
		base := logBase(img.Base(), tid)
		if img.ReadU64(base+hdrMode) == modeRedo {
			if img.ReadU64(base+hdrCommitted) != img.ReadU64(base+hdrApplied) {
				return false
			}
			continue
		}
		live, err := liveEntries(img, base, img.ReadU64(base))
		if err != nil || len(live) > 0 {
			return false
		}
	}
	return true
}
