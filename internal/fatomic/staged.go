package fatomic

import (
	"pmemspec/internal/machine"
	"pmemspec/internal/mem"
)

// RunStaged executes one failure-atomic section structured as a sequence
// of stages — §6.3's incremental recovery (after iDO): a misspeculation
// aborts and re-executes only the stage that was running, not the whole
// section, bounding the recovery overhead to one stage ("the
// misspeculation overhead is further bound to the re-execution of the
// regions that encounter misspeculation").
//
// With respect to power failures the section is still atomic: all stages
// share one undo log and one commit point, so crash recovery rolls the
// entire section back if the commit sequence did not persist.
//
// Each stage boundary carries a durability barrier, so by the time stage
// k begins, every persist of stages < k has reached the controller and
// any store-misspeculation they could raise has been delivered; as in
// iDO, stages are assumed to outlive the speculation window, so a flag
// raised inside stage k is attributed to stage k. Stage closures must be
// re-executable, like Run bodies.
func (r *Runtime) RunStaged(t *machine.Thread, stages []func(f *FASE)) {
	tid := t.Core()
	st := &r.state[tid]
	st.misspec = false
	st.inFASE = true
	defer func() { st.inFASE = false }()

	f := &FASE{r: r, t: t, tid: tid, base: logBase(r.m.Space().Base(), tid), seq: st.nextSeq}
	st.nextSeq++

	for k := 0; k < len(stages); {
		stageStart := f.count
		if r.attemptStage(f, stages[k]) {
			k++
			continue
		}
		// Abort: erase only this stage's effects and retry it.
		r.Stats.Aborts++
		r.Stats.StageRetries++
		r.rollbackRange(f, stageStart)
		st.misspec = false
	}

	// Commit the whole section (one durability point, as in attempt).
	t.StorePrivateU64(f.base, f.seq)
	r.model.Flush(t, f.base, 8)
	r.model.OrderBarrier(t)
	r.Stats.FASEs++
}

// attemptStage runs one stage and its boundary durability barrier,
// reporting false if the stage must abort and re-execute.
func (r *Runtime) attemptStage(f *FASE, stage func(f *FASE)) (committed bool) {
	t := f.t
	defer func() {
		if rec := recover(); rec != nil {
			switch rec.(type) {
			case abortSignal:
				committed = false
			case *machine.Fault:
				if r.state[f.tid].misspec {
					r.Stats.FaultsSuppressed++
					committed = false
					return
				}
				panic(rec)
			default:
				panic(rec)
			}
		}
	}()
	stage(f)
	// Stage boundary: every persist of this stage has arrived, so its
	// detections (if any) have been delivered before the flag check.
	r.model.DurableBarrier(t)
	return !r.state[f.tid].misspec
}

// rollbackRange undoes the log entries appended at or after `from`, in
// reverse, through the normal store path, and truncates the volatile
// count back to `from`. Entries of earlier stages stay intact: a later
// crash still rolls the whole section back through them.
func (r *Runtime) rollbackRange(f *FASE, from uint64) {
	t := f.t
	var buf [MaxEntryData]byte
	for i := int64(f.count) - 1; i >= int64(from); i-- {
		e := entryAddr(f.base, uint64(i))
		addr := mem.Addr(t.LoadU64(e))
		n := t.LoadU64(e + 8)
		if n > MaxEntryData {
			panic("fatomic: corrupt log entry length")
		}
		t.Load(e+entryHdr, buf[:n])
		t.Store(addr, buf[:n])
		r.model.Flush(t, addr, int(n))
		r.Stats.UndoneEntries++
	}
	r.model.DurableBarrier(t)
	f.count = from
}
