package fatomic

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"pmemspec/internal/core"
	"pmemspec/internal/machine"
	"pmemspec/internal/mem"
	"pmemspec/internal/osint"
	"pmemspec/internal/persist"
	"pmemspec/internal/sim"
)

type env struct {
	m  *machine.Machine
	os *osint.OS
	rt *Runtime
}

func newEnv(t *testing.T, d machine.Design, cores int, mode Mode) *env {
	t.Helper()
	cfg := machine.DefaultConfig(d, cores)
	cfg.MemBytes = 8 * 1024 * 1024
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	os := osint.New(m)
	rt := New(m, persist.ForDesign(d), os, mode)
	return &env{m: m, os: os, rt: rt}
}

func (e *env) heapBase() mem.Addr {
	return e.m.Space().Base() + mem.Addr(HeapReserve(e.m.Config().Cores))
}

func TestFASECommitPersistsAllDesigns(t *testing.T) {
	for _, d := range machine.Designs {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			e := newEnv(t, d, 1, Lazy)
			a := e.heapBase()
			e.m.Spawn("w", func(th *machine.Thread) {
				e.rt.Run(th, func(f *FASE) {
					f.StoreU64(a, 0xabcd)
					f.StoreU64(a+64, 0x1234)
				})
			})
			if err := e.m.Run(); err != nil {
				t.Fatal(err)
			}
			pm := e.m.Space().PM
			if pm.ReadU64(a) != 0xabcd || pm.ReadU64(a+64) != 0x1234 {
				t.Error("committed FASE data not durable")
			}
			if !AllCommitted(pm, 1) {
				t.Error("log not truncated after commit")
			}
			if e.rt.Stats.FASEs != 1 || e.rt.Stats.Aborts != 0 {
				t.Errorf("stats = %+v", e.rt.Stats)
			}
		})
	}
}

func TestFASEStoreLogsOldValue(t *testing.T) {
	e := newEnv(t, machine.IntelX86, 1, Lazy)
	a := e.heapBase()
	logb := logBase(e.m.Space().Base(), 0)
	e.m.Spawn("w", func(th *machine.Thread) {
		th.StoreU64(a, 111) // pre-FASE value (not logged)
		th.CLWB(a)
		th.SFence()
		e.rt.Run(th, func(f *FASE) {
			f.StoreU64(a, 222)
			// Mid-FASE the log must hold one valid entry with the old
			// value and this attempt's sequence, not yet committed.
			entry := logb + mem.BlockSize
			if got := th.LoadU64(entry); got != uint64(a) {
				t.Errorf("entry addr = %#x", got)
			}
			if got := th.LoadU64(entry + 16); got != f.Seq() {
				t.Errorf("entry seq = %d, want %d", got, f.Seq())
			}
			if got := th.LoadU64(entry + 32); got != 111 {
				t.Errorf("entry old value = %d", got)
			}
			if committed := th.LoadU64(logb); committed >= f.Seq() {
				t.Errorf("sequence %d already committed mid-FASE", f.Seq())
			}
		})
	})
	if err := e.m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashMidFASERollsBack(t *testing.T) {
	for _, d := range machine.Designs {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			e := newEnv(t, d, 1, Lazy)
			a := e.heapBase()
			e.m.Spawn("w", func(th *machine.Thread) {
				// Committed FASE: establishes 100/100.
				e.rt.Run(th, func(f *FASE) {
					f.StoreU64(a, 100)
					f.StoreU64(a+8, 100)
				})
				// Second FASE crashes between its two stores.
				e.rt.Run(th, func(f *FASE) {
					f.StoreU64(a, 999)
					th.Work(sim.NS(100_000)) // crash lands here
					f.StoreU64(a+8, 999)
				})
			})
			e.m.ScheduleCrash(sim.NS(60_000))
			if err := e.m.Run(); !errors.Is(err, machine.ErrCrashed) {
				t.Fatalf("Run = %v", err)
			}
			img := e.m.Space().PM
			rep, err := Recover(img, 1)
			if err != nil {
				t.Fatal(err)
			}
			if rep.ThreadsRolledBack != 1 {
				t.Fatalf("report = %+v, want one rolled-back thread", rep)
			}
			x, y := img.ReadU64(a), img.ReadU64(a+8)
			if x != 100 || y != 100 {
				t.Errorf("post-recovery state = %d/%d, want 100/100 (atomicity)", x, y)
			}
			if !AllCommitted(img, 1) {
				t.Error("log not truncated by recovery")
			}
		})
	}
}

// TestCrashSweepAtomicity is the crash-consistency cornerstone: crash at
// many points through a run of FASEs that each keep the invariant
// slots[0..3] all equal; after recovery the invariant must hold at some
// committed generation.
func TestCrashSweepAtomicity(t *testing.T) {
	for _, d := range machine.Designs {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			for crashNS := int64(2_000); crashNS <= 200_000; crashNS += 13_777 {
				e := newEnv(t, d, 1, Lazy)
				a := e.heapBase()
				e.m.Spawn("w", func(th *machine.Thread) {
					for gen := uint64(1); gen <= 60; gen++ {
						e.rt.Run(th, func(f *FASE) {
							for s := 0; s < 4; s++ {
								f.StoreU64(a+mem.Addr(s*8), gen)
							}
						})
					}
				})
				e.m.ScheduleCrash(sim.NS(crashNS))
				err := e.m.Run()
				if err != nil && !errors.Is(err, machine.ErrCrashed) {
					t.Fatal(err)
				}
				img := e.m.Space().PM
				if _, err := Recover(img, 1); err != nil {
					t.Fatal(err)
				}
				v0 := img.ReadU64(a)
				for s := 1; s < 4; s++ {
					if v := img.ReadU64(a + mem.Addr(s*8)); v != v0 {
						t.Fatalf("crash@%dns: slots torn after recovery: %d vs %d (slot %d)", crashNS, v0, v, s)
					}
				}
			}
		})
	}
}

func TestMisspecLazyAbortAndRetry(t *testing.T) {
	e := newEnv(t, machine.PMEMSpec, 1, Lazy)
	a := e.heapBase()
	attempts := 0
	e.m.Spawn("w", func(th *machine.Thread) {
		th.StoreU64(a, 7) // pre-FASE value
		th.SpecBarrier()
		e.rt.Run(th, func(f *FASE) {
			attempts++
			f.StoreU64(a, 50+uint64(attempts))
			if attempts == 1 {
				// Simulate the hardware interrupt mid-FASE.
				e.rt.onMisspec(core.Misspeculation{Kind: core.LoadMisspec, Addr: a})
			}
		})
	})
	if err := e.m.Run(); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (abort + retry)", attempts)
	}
	if e.rt.Stats.Aborts != 1 || e.rt.Stats.FASEs != 1 || e.rt.Stats.UndoneEntries == 0 {
		t.Errorf("stats = %+v", e.rt.Stats)
	}
	if got := e.m.Space().PM.ReadU64(a); got != 52 {
		t.Errorf("final value = %d, want 52 (second attempt)", got)
	}
}

func TestMisspecEagerAbortsAtNextOp(t *testing.T) {
	e := newEnv(t, machine.PMEMSpec, 1, Eager)
	a := e.heapBase()
	attempts, reachedTail := 0, 0
	e.m.Spawn("w", func(th *machine.Thread) {
		e.rt.Run(th, func(f *FASE) {
			attempts++
			f.StoreU64(a, uint64(attempts))
			if attempts == 1 {
				e.rt.onMisspec(core.Misspeculation{Kind: core.StoreMisspec, Addr: a})
			}
			f.StoreU64(a+8, uint64(attempts)) // first attempt aborts here
			reachedTail++
		})
	})
	if err := e.m.Run(); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 || reachedTail != 1 {
		t.Errorf("attempts=%d tail=%d, want 2 and 1", attempts, reachedTail)
	}
}

func TestFaultSuppressionUnderMisspec(t *testing.T) {
	e := newEnv(t, machine.PMEMSpec, 1, Lazy)
	a := e.heapBase()
	attempts := 0
	e.m.Spawn("w", func(th *machine.Thread) {
		e.rt.Run(th, func(f *FASE) {
			attempts++
			f.StoreU64(a, 1)
			if attempts == 1 {
				e.rt.onMisspec(core.Misspeculation{Kind: core.LoadMisspec, Addr: a})
				// Stale data led the program to a wild pointer:
				f.LoadU64(0xdead_0000_0000)
			}
		})
	})
	if err := e.m.Run(); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 || e.rt.Stats.FaultsSuppressed != 1 {
		t.Errorf("attempts=%d suppressed=%d", attempts, e.rt.Stats.FaultsSuppressed)
	}
}

func TestFaultWithoutMisspecPropagates(t *testing.T) {
	e := newEnv(t, machine.PMEMSpec, 1, Lazy)
	e.m.Spawn("w", func(th *machine.Thread) {
		e.rt.Run(th, func(f *FASE) {
			f.LoadU64(0xdead_0000_0000) // genuine bug: no misspec pending
		})
	})
	err := e.m.Run()
	if err == nil || !strings.Contains(err.Error(), "simulated fault") {
		t.Errorf("Run = %v, want propagated fault", err)
	}
}

func TestMisspecFlagsOnlyThreadsInFASE(t *testing.T) {
	e := newEnv(t, machine.PMEMSpec, 2, Lazy)
	a := e.heapBase()
	var inFASEAborted, outsideAborted bool
	var lk sim.Mutex
	e.m.Spawn("inside", func(th *machine.Thread) {
		cnt := 0
		e.rt.Run(th, func(f *FASE) {
			cnt++
			f.StoreU64(a, 1)
			if cnt == 1 {
				th.Lock(&lk)
				e.rt.onMisspec(core.Misspeculation{Kind: core.LoadMisspec, Addr: a})
				th.Unlock(&lk)
			}
		})
		inFASEAborted = cnt == 2
	})
	e.m.Spawn("outside", func(th *machine.Thread) {
		th.Work(sim.NS(100_000)) // no FASE running when the signal fires
		cnt := 0
		e.rt.Run(th, func(f *FASE) {
			cnt++
			f.StoreU64(a+64, 2)
		})
		outsideAborted = cnt > 1
	})
	if err := e.m.Run(); err != nil {
		t.Fatal(err)
	}
	if !inFASEAborted {
		t.Error("thread in FASE was not aborted")
	}
	if outsideAborted {
		t.Error("thread outside FASE was aborted")
	}
}

func TestProgrammaticAbortRetries(t *testing.T) {
	e := newEnv(t, machine.HOPS, 1, Lazy)
	a := e.heapBase()
	attempts := 0
	e.m.Spawn("w", func(th *machine.Thread) {
		e.rt.Run(th, func(f *FASE) {
			attempts++
			f.StoreU64(a, uint64(attempts))
			if attempts < 3 {
				f.Abort()
			}
		})
	})
	if err := e.m.Run(); err != nil {
		t.Fatal(err)
	}
	if attempts != 3 || e.rt.Stats.Aborts != 2 {
		t.Errorf("attempts=%d aborts=%d", attempts, e.rt.Stats.Aborts)
	}
	if got := e.m.Space().PM.ReadU64(a); got != 3 {
		t.Errorf("value = %d", got)
	}
}

func TestLargeStoreSplitsLogEntries(t *testing.T) {
	e := newEnv(t, machine.PMEMSpec, 1, Lazy)
	a := e.heapBase()
	data := make([]byte, 200) // > MaxEntryData: needs 4 entries
	for i := range data {
		data[i] = byte(i)
	}
	e.m.Spawn("w", func(th *machine.Thread) {
		e.rt.Run(th, func(f *FASE) {
			f.Store(a, data)
		})
	})
	if err := e.m.Run(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 200)
	e.m.Space().PM.Read(a, got)
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("byte %d = %d", i, got[i])
		}
	}
}

func TestRecoverIgnoresTornEntry(t *testing.T) {
	img := mem.NewImage(mem.DefaultBase, 1<<20)
	base := logBase(mem.DefaultBase, 0)
	e := base + mem.BlockSize
	// A torn entry: plausible header, wrong checksum. Recovery must skip
	// it (the crash hit mid-append) and undo nothing.
	img.WriteU64(e, uint64(mem.DefaultBase+0x8000))
	img.WriteU64(e+8, 8)
	img.WriteU64(e+16, 5) // seq > committed (0)
	img.WriteU64(e+24, 0xBAD)
	img.WriteU64(mem.DefaultBase+0x8000, 42)
	rep, err := Recover(img, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EntriesUndone != 0 || rep.ThreadsRolledBack != 0 {
		t.Errorf("report = %+v, want nothing undone", rep)
	}
	if img.ReadU64(mem.DefaultBase+0x8000) != 42 {
		t.Error("torn entry was applied")
	}
}

func TestRecoverRejectsOutOfRangeTarget(t *testing.T) {
	img := mem.NewImage(mem.DefaultBase, 1<<20)
	base := logBase(mem.DefaultBase, 0)
	e := base + mem.BlockSize
	// A checksum-valid entry whose target lies outside the image.
	bad := mem.Addr(0xFFFF_0000_0000)
	old := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	img.WriteU64(e, uint64(bad))
	img.WriteU64(e+8, 8)
	img.WriteU64(e+16, 5)
	img.WriteU64(e+24, entryChecksum(bad, 8, 5, old))
	img.Write(e+32, old)
	if _, err := Recover(img, 1); err == nil {
		t.Error("out-of-image target accepted")
	}
}

func TestRecoverIdempotent(t *testing.T) {
	// Two recovery passes must agree: the second finds nothing live.
	e := newEnv(t, machine.PMEMSpec, 1, Lazy)
	a := e.heapBase()
	e.m.Spawn("w", func(th *machine.Thread) {
		e.rt.Run(th, func(f *FASE) {
			f.StoreU64(a, 1)
		})
		e.rt.Run(th, func(f *FASE) {
			f.StoreU64(a, 2)
			th.Work(sim.NS(500_000))
		})
	})
	e.m.ScheduleCrash(sim.NS(100_000))
	if err := e.m.Run(); !errors.Is(err, machine.ErrCrashed) {
		t.Fatal(err)
	}
	img := e.m.Space().PM
	rep1, err := Recover(img, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Recover(img, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.EntriesUndone != 0 {
		t.Errorf("second pass undid %d entries (first: %+v)", rep2.EntriesUndone, rep1)
	}
	if got := img.ReadU64(a); got != 1 {
		t.Errorf("value = %d, want committed 1", got)
	}
	if !AllCommitted(img, 1) {
		t.Error("log still live after recovery")
	}
}

func TestMultiThreadFASEs(t *testing.T) {
	const threads = 4
	e := newEnv(t, machine.PMEMSpec, threads, Lazy)
	base := e.heapBase()
	var lk sim.Mutex
	for i := 0; i < threads; i++ {
		e.m.Spawn(fmt.Sprintf("t%d", i), func(th *machine.Thread) {
			for j := 0; j < 25; j++ {
				th.Lock(&lk)
				e.rt.Run(th, func(f *FASE) {
					v := f.LoadU64(base)
					f.StoreU64(base, v+1)
				})
				th.Unlock(&lk)
			}
		})
	}
	if err := e.m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.m.Space().PM.ReadU64(base); got != threads*25 {
		t.Errorf("counter = %d, want %d", got, threads*25)
	}
	if e.rt.Stats.FASEs != threads*25 {
		t.Errorf("FASEs = %d", e.rt.Stats.FASEs)
	}
}

func TestHeapReserveGeometry(t *testing.T) {
	if HeapReserve(8) != 4096+8*LogRegionBytes {
		t.Error("HeapReserve(8) mismatch")
	}
	if EntryCap < 400 {
		t.Errorf("EntryCap = %d, expected hundreds of entries per FASE", EntryCap)
	}
}
