// Package ppath models PMEM-Spec's decoupled persist-path (§4.2): one
// FIFO per core connecting the CPU store queue directly to the PM
// controller, bypassing the cache hierarchy.
//
// Each PM store that commits from the store queue is pushed into its
// core's path immediately and arrives at the PM controller after the
// path transit latency, in commit order (the path is FIFO), so the
// intra-thread persist-order equals the volatile memory order — strict
// persistency. Paths of different cores are independent: their messages
// can interleave arbitrarily at the controller, which is exactly the
// freedom that makes inter-thread store misspeculation possible.
//
// The paths share a ring bus; a per-message slot gap models its
// bandwidth, so a burst of stores queues up and a message's arrival can
// slip past another core's later store — the reordering ingredient of
// the paper's §5.2 scenario.
package ppath

import (
	"fmt"

	"pmemspec/internal/mem"
	"pmemspec/internal/metrics"
	"pmemspec/internal/sim"
)

// Message is one store travelling down a persist-path. The payload is
// stored inline (stores are ≤ 8 bytes after store-queue splitting) so a
// message costs no separate heap allocation on the per-store hot path.
type Message struct {
	Core   int
	Addr   mem.Addr
	Data   [8]byte // the store's payload bytes, Len of them valid
	Len    int
	SpecID uint64 // speculation ID, 0 outside critical sections
	SentAt sim.Time
	Arrive sim.Time
}

// Payload returns the message's payload bytes.
func (m *Message) Payload() []byte { return m.Data[:m.Len] }

// Config parameterizes the persist-paths.
type Config struct {
	// Latency is the idle path transit latency (20 ns by default,
	// Table 3).
	Latency sim.Time
	// SlotGap is the minimum spacing between two messages of one core
	// on the ring bus (bandwidth model).
	SlotGap sim.Time
}

// DefaultConfig matches the paper's main configuration: 20 ns transit
// and one message per core cycle — the persist-path connects the store
// queue, which commits at most one store per cycle, so the path is never
// the narrower resource.
func DefaultConfig() Config {
	return Config{Latency: sim.NS(20), SlotGap: 1}
}

// Paths is the set of per-core persist-paths feeding one PM controller.
type Paths struct {
	cfg     Config
	kernel  *sim.Kernel
	deliver func(Message)
	// lastArrive is, per core, the arrival time of the newest message
	// scheduled; FIFO order forces successors to arrive after it.
	lastArrive  []sim.Time
	outstanding []int
	// inflight holds each core's in-flight messages in send order. Per-
	// core arrivals are monotonically non-decreasing (FIFO path), so the
	// arrival event for a core always delivers that core's ring head —
	// which is what lets Send use a pooled handler event instead of
	// allocating a closure per store.
	inflight []msgRing

	// Sent and Delivered count messages (statistics).
	Sent, Delivered uint64
	// PeakOutstanding is the largest per-core in-flight count observed —
	// the FIFO occupancy high-water mark.
	PeakOutstanding int
	// SlotStallCycles accumulates the extra transit delay messages took
	// because the ring-bus slot gap pushed their arrival past the idle
	// latency.
	SlotStallCycles sim.Time

	// OccHist, when set, observes a core's in-flight count after every
	// send (nil-safe).
	OccHist *metrics.Histogram
}

// New creates persist-paths for ncores cores. deliver is invoked (in
// kernel event context) when a message reaches the PM controller.
func New(k *sim.Kernel, ncores int, cfg Config, deliver func(Message)) *Paths {
	if cfg.Latency <= 0 || cfg.SlotGap < 0 {
		panic(fmt.Sprintf("ppath: bad config %+v", cfg))
	}
	return &Paths{
		cfg:         cfg,
		kernel:      k,
		deliver:     deliver,
		lastArrive:  make([]sim.Time, ncores),
		outstanding: make([]int, ncores),
		inflight:    make([]msgRing, ncores),
	}
}

// msgRing is a FIFO of in-flight messages: a slice with a head cursor,
// reset when drained and compacted when the dead prefix dominates, so
// steady-state sends reuse the same backing array.
type msgRing struct {
	buf  []Message
	head int
}

func (r *msgRing) push(m Message) { r.buf = append(r.buf, m) }

func (r *msgRing) pop() Message {
	m := r.buf[r.head]
	r.head++
	if r.head == len(r.buf) {
		r.buf = r.buf[:0]
		r.head = 0
	} else if r.head >= 64 && r.head*2 >= len(r.buf) {
		n := copy(r.buf, r.buf[r.head:])
		r.buf = r.buf[:n]
		r.head = 0
	}
	return m
}

// Config returns the path configuration.
func (p *Paths) Config() Config { return p.cfg }

// Send pushes a store onto core's persist-path at time now. The payload
// is copied. It returns the scheduled arrival time.
func (p *Paths) Send(core int, a mem.Addr, data []byte, specID uint64, now sim.Time) sim.Time {
	if len(data) > 8 {
		panic(fmt.Sprintf("ppath: %d-byte payload exceeds one store", len(data)))
	}
	arrive := now + p.cfg.Latency
	if min := p.lastArrive[core] + p.cfg.SlotGap; arrive < min {
		p.SlotStallCycles += min - arrive
		arrive = min
	}
	p.lastArrive[core] = arrive
	p.outstanding[core]++
	p.Sent++
	if p.outstanding[core] > p.PeakOutstanding {
		p.PeakOutstanding = p.outstanding[core]
	}
	p.OccHist.Observe(int64(p.outstanding[core]))
	msg := Message{Core: core, Addr: a, SpecID: specID, SentAt: now, Arrive: arrive}
	msg.Len = copy(msg.Data[:], data)
	p.inflight[core].push(msg)
	p.kernel.ScheduleHandler(arrive, p, uint64(core))
	return arrive
}

// OnEvent delivers the head message of a core's path at its arrival
// time (sim.Handler; arg is the core).
func (p *Paths) OnEvent(at sim.Time, arg uint64) {
	core := int(arg)
	msg := p.inflight[core].pop()
	p.outstanding[core]--
	p.Delivered++
	p.deliver(msg)
}

// DrainTime returns the time by which every message core has sent so far
// will have arrived at the PM controller. A spec-barrier stalls the
// thread until this time (§4.2: spec-barrier guarantees previous PM
// stores arrive at the persistent domain).
func (p *Paths) DrainTime(core int) sim.Time { return p.lastArrive[core] }

// Outstanding returns the number of core's messages still in flight.
func (p *Paths) Outstanding(core int) int { return p.outstanding[core] }

// Publish copies the fabric's end-of-run statistics into the registry
// (accumulating across fabrics in the multi-controller configurations).
func (p *Paths) Publish(r *metrics.Registry) {
	r.Counter("ppath", "sent").Add(p.Sent)
	r.Counter("ppath", "delivered").Add(p.Delivered)
	r.Counter("ppath", "slot_stall_cycles").Add(uint64(p.SlotStallCycles))
	r.Gauge("ppath", "peak_outstanding").Observe(int64(p.PeakOutstanding))
}

// InFlightAnywhere reports whether any core has messages in flight
// (used by crash injection: messages not yet at the controller are lost).
func (p *Paths) InFlightAnywhere() bool {
	for _, n := range p.outstanding {
		if n > 0 {
			return true
		}
	}
	return false
}
