package ppath

import (
	"testing"
	"testing/quick"

	"pmemspec/internal/mem"
	"pmemspec/internal/sim"
)

func TestSendDeliversAfterLatency(t *testing.T) {
	k := sim.NewKernel()
	var got []Message
	p := New(k, 2, DefaultConfig(), func(m Message) { got = append(got, m) })
	arrive := p.Send(0, 0x1000, []byte{1, 2}, 7, 100)
	if arrive != 100+sim.NS(20) {
		t.Errorf("arrive = %v, want 100+40cyc", arrive)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d messages", len(got))
	}
	m := got[0]
	if m.Core != 0 || m.Addr != 0x1000 || m.SpecID != 7 || m.Arrive != arrive || len(m.Payload()) != 2 {
		t.Errorf("message = %+v", m)
	}
}

func TestFIFOPerCore(t *testing.T) {
	k := sim.NewKernel()
	var order []mem.Addr
	p := New(k, 1, DefaultConfig(), func(m Message) { order = append(order, m.Addr) })
	// Burst of sends at the same instant: slot gap forces spaced, in-order
	// arrivals.
	a1 := p.Send(0, 0x1000, []byte{1}, 0, 0)
	a2 := p.Send(0, 0x1040, []byte{2}, 0, 0)
	a3 := p.Send(0, 0x1080, []byte{3}, 0, 0)
	if !(a1 < a2 && a2 < a3) {
		t.Errorf("arrivals not strictly ordered: %v %v %v", a1, a2, a3)
	}
	if a2-a1 != DefaultConfig().SlotGap {
		t.Errorf("slot gap = %v", a2-a1)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != 0x1000 || order[1] != 0x1040 || order[2] != 0x1080 {
		t.Errorf("delivery order = %v", order)
	}
}

func TestCrossCoreReorderingPossible(t *testing.T) {
	// Core 0 has a backlog; its message sent at t=0 arrives after core
	// 1's message sent later — the ingredient of store misspeculation.
	// A narrow path (large slot gap) makes the backlog visible.
	k := sim.NewKernel()
	var order []int
	narrow := Config{Latency: sim.NS(20), SlotGap: sim.NS(2)}
	p := New(k, 2, narrow, func(m Message) { order = append(order, m.Core) })
	for i := 0; i < 20; i++ {
		p.Send(0, mem.Addr(0x1000+i*64), []byte{1}, 0, 0)
	}
	lateSent := sim.Time(10)
	a0 := p.Send(0, 0x9000, []byte{1}, 0, lateSent)    // queued behind backlog
	a1 := p.Send(1, 0x9000, []byte{2}, 0, lateSent+20) // idle path
	if a1 >= a0 {
		t.Fatalf("no reordering: core1 at %v, core0 at %v", a1, a0)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainTimeCoversAllSends(t *testing.T) {
	k := sim.NewKernel()
	p := New(k, 1, DefaultConfig(), func(Message) {})
	var last sim.Time
	for i := 0; i < 5; i++ {
		last = p.Send(0, mem.Addr(0x1000+i*64), []byte{1}, 0, sim.Time(i))
	}
	if p.DrainTime(0) != last {
		t.Errorf("DrainTime = %v, want %v", p.DrainTime(0), last)
	}
	if p.Outstanding(0) != 5 || !p.InFlightAnywhere() {
		t.Error("outstanding tracking wrong before run")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Outstanding(0) != 0 || p.InFlightAnywhere() {
		t.Error("outstanding tracking wrong after run")
	}
	if p.Sent != 5 || p.Delivered != 5 {
		t.Errorf("sent=%d delivered=%d", p.Sent, p.Delivered)
	}
}

func TestPayloadCopied(t *testing.T) {
	k := sim.NewKernel()
	var got []byte
	p := New(k, 1, DefaultConfig(), func(m Message) { got = append([]byte(nil), m.Payload()...) })
	buf := []byte{5}
	p.Send(0, 0x1000, buf, 0, 0)
	buf[0] = 0
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 {
		t.Error("persist-path aliased caller payload")
	}
}

func TestArrivalMonotonicPerCoreProperty(t *testing.T) {
	f := func(sends []uint8) bool {
		k := sim.NewKernel()
		p := New(k, 1, DefaultConfig(), func(Message) {})
		now := sim.Time(0)
		prev := sim.Time(-1)
		for _, g := range sends {
			now += sim.Time(g)
			a := p.Send(0, 0x1000, []byte{1}, 0, now)
			if a <= prev {
				return false
			}
			if a < now+p.Config().Latency {
				return false // can't beat the idle latency
			}
			prev = a
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
