package pmemspec_test

import (
	"fmt"
	"log"

	"pmemspec"
)

// ExampleRunBenchmark runs a small red-black-tree benchmark on the
// PMEM-Spec design and reports what committed. Simulations are
// deterministic, so the output is exact.
func ExampleRunBenchmark() {
	w, err := pmemspec.WorkloadByName("rbtree")
	if err != nil {
		log.Fatal(err)
	}
	// Scale 8 keeps the initial tree tiny; committed counts the 8 setup
	// inserts plus 2 threads × 25 operations.
	res, err := pmemspec.RunBenchmark(pmemspec.PMEMSpec, w,
		pmemspec.BenchParams{Threads: 2, Ops: 25, DataSize: 64, Scale: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design=%s committed=%d misspeculations=%d\n",
		res.Design, res.Committed, len(res.MStats.Misspeculations))
	// Output: design=PMEM-Spec committed=58 misspeculations=0
}

// ExampleRecover shows the post-crash recovery API: a crash between the
// two stores of a failure-atomic section rolls the section back.
func ExampleRecover() {
	cfg := pmemspec.DefaultConfig(pmemspec.PMEMSpec, 1)
	cfg.MemBytes = 16 << 20
	m, err := pmemspec.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// (The quickstart example wires a full runtime; here we only show
	// that a fresh machine's persisted image recovers to "no sections in
	// flight".)
	rep, err := pmemspec.Recover(m.Space().PM, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rolled back %d sections\n", rep.ThreadsRolledBack)
	// Output: rolled back 0 sections
}
