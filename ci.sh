#!/bin/sh
# ci.sh — the tier-1 verification workflow. Run before every commit.
#
#   ./ci.sh          full check (build, vet, fmt, tests, race-checked harness)
#   QUICK=1 ./ci.sh  same, but the slow figure-shape sweeps run in -short mode
#
# The -race pass covers internal/harness because that is where host-level
# concurrency lives (the experiment worker pool); the simulator itself is
# single-goroutine-at-a-time per kernel but many kernels run concurrently
# under the pool, so the harness suite doubles as the cross-run
# shared-state audit.
set -eu
cd "$(dirname "$0")"

short=""
if [ "${QUICK:-0}" = "1" ]; then
	short="-short"
fi

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" "$unformatted"
	exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== pmemspec-lint -fix -diff ./... =="
# The repo's own persistency-discipline and determinism analyzers
# (internal/analysis); any diagnostic fails the build. Check mode
# (-fix -diff) additionally fails if the redundant-barrier optimizer
# still has applicable edits — apply them with `pmemspec-lint -fix`
# before committing. The analysis must also fit the wall-clock budget
# (the loader is stdlib-only and signatures-only for dependencies, so a
# lint run costs seconds, not a build). The binary is built outside the
# timed window so the budget measures analysis, not compilation.
LINT_BUDGET_S=${LINT_BUDGET_S:-120}
go build -o /tmp/pmemspec-lint ./cmd/pmemspec-lint
lint_start=$(date +%s)
/tmp/pmemspec-lint -fix -diff ./...
lint_elapsed=$(( $(date +%s) - lint_start ))
echo "pmemspec-lint: ${lint_elapsed}s (budget ${LINT_BUDGET_S}s)"
if [ "$lint_elapsed" -gt "$LINT_BUDGET_S" ]; then
	echo "pmemspec-lint exceeded its ${LINT_BUDGET_S}s wall-clock budget"
	exit 1
fi

echo "== go build ./... =="
go build ./...

echo "== go test $short ./... =="
go test $short ./...

echo "== coverage floor (./internal/...) =="
# Statement coverage over the simulator packages, gated on the
# checked-in floor (COVERAGE_FLOOR). -short always: the floor tracks the
# cheap suite, so quick and full runs gate identically.
go test -short -coverprofile=/tmp/pmemspec-cover.out ./internal/... >/dev/null
coverage=$(go tool cover -func=/tmp/pmemspec-cover.out | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
floor=$(cat COVERAGE_FLOOR)
echo "coverage ${coverage}% (floor ${floor}%)"
if ! awk -v c="$coverage" -v f="$floor" 'BEGIN { exit !(c+0 >= f+0) }'; then
	echo "coverage ${coverage}% fell below the checked-in floor ${floor}%"
	exit 1
fi

echo "== go test -race $short ./internal/harness/... ./internal/sim/... ./internal/serve/... =="
# -timeout raised above the go default: the race detector is ~10x and
# the harness sweeps are minutes-long even unraced on small hosts.
# internal/serve joins the race pass because it is the other place
# host-level concurrency lives (HTTP handlers racing the job
# dispatchers and the result cache).
go test -race -timeout 60m $short ./internal/harness/... ./internal/sim/... ./internal/serve/...

echo "== crash campaign (all designs, boundary-aligned, injection) =="
# A small end-to-end fault-injection campaign: every design × every
# workload, persist-boundary-aligned crash points plus a coarse uniform
# grid, with synthetic misspeculations injected through the OS relay.
# Exits non-zero on any invariant violation or failed trial.
go run ./cmd/pmemspec-crash -all -threads 2 -ops 12 -points 2 -maxus 100 \
	-boundaries -boundary-budget 2 -max-points 5 \
	-inject-stale-ns 4000 -inject-ooo-ns 7000 -inject-count 3 \
	-report /tmp/pmemspec-campaign.json
# The report must be independent of pool width (checked on one cell;
# the harness suite covers the multi-design case).
go run ./cmd/pmemspec-crash -workload queue -threads 2 -ops 12 -points 3 -maxus 100 \
	-boundaries -boundary-budget 2 -inject-stale-ns 4000 -inject-count 3 \
	-parallel 1 -report /tmp/pmemspec-campaign-p1.json >/dev/null
go run ./cmd/pmemspec-crash -workload queue -threads 2 -ops 12 -points 3 -maxus 100 \
	-boundaries -boundary-budget 2 -inject-stale-ns 4000 -inject-count 3 \
	-parallel 8 -report /tmp/pmemspec-campaign-p8.json >/dev/null
cmp /tmp/pmemspec-campaign-p1.json /tmp/pmemspec-campaign-p8.json

echo "== metrics grid determinism (step core, pool width 1 vs 8) =="
# The observability layer's acceptance check: the (design, workload)
# metrics grid of a small Figure 9 sweep must serialize byte-identically
# whether the runs share one worker or race across eight. The execution
# core is pinned to the default step core explicitly so an inherited
# PMEMSPEC_EXEC_CORE cannot silently change what this gate measures.
# The -parallel 1 run doubles as the fresh wall-clock record for the
# perf gate below.
go build -o /tmp/pmemspec-bench ./cmd/pmemspec-bench
PMEMSPEC_EXEC_CORE=step /tmp/pmemspec-bench -experiment fig9 -ops 50 -threads 2 -seed 1 -parallel 1 -json \
	-metrics-out /tmp/pmemspec-metrics-p1.json \
	-bench-out /tmp/pmemspec-bench-small.json >/dev/null
PMEMSPEC_EXEC_CORE=step /tmp/pmemspec-bench -experiment fig9 -ops 50 -threads 2 -seed 1 -parallel 8 -json \
	-metrics-out /tmp/pmemspec-metrics-p8.json >/dev/null
cmp /tmp/pmemspec-metrics-p1.json /tmp/pmemspec-metrics-p8.json

echo "== execution-core identity (step vs handshake, tiny grid) =="
# Both execution cores must produce byte-identical metrics: the step
# core's inline dispatch is a pure mechanism change, and this is the
# cross-check that keeps the legacy handshake core honest as an oracle.
PMEMSPEC_EXEC_CORE=step /tmp/pmemspec-bench -experiment fig9 -ops 12 -threads 2 -seed 1 -parallel 1 -json \
	-metrics-out /tmp/pmemspec-metrics-step.json >/dev/null
PMEMSPEC_EXEC_CORE=handshake /tmp/pmemspec-bench -experiment fig9 -ops 12 -threads 2 -seed 1 -parallel 1 -json \
	-metrics-out /tmp/pmemspec-metrics-handshake.json >/dev/null
cmp /tmp/pmemspec-metrics-step.json /tmp/pmemspec-metrics-handshake.json

echo "== bench-cmp small-grid perf gate =="
# Wall-clock regression gate against the checked-in small-grid baseline.
# BENCH_TOL is loose by default because hosted runners and laptops differ
# widely; tighten it (e.g. 0.15) when comparing on the baseline host.
go run ./cmd/pmemspec-ci bench-cmp -baseline BENCH_baseline_small.json \
	-current /tmp/pmemspec-bench-small.json -tolerance "${BENCH_TOL:-0.5}"

if [ "${QUICK:-0}" != "1" ]; then
	echo "== opt-loop (optimize -> simulate -> verify, budgeted) =="
	# The closed optimization loop on the planted naive workloads: the
	# optimization analyzers' edits must apply cleanly to a sandboxed
	# module copy, the copy must re-analyze clean, the edited workloads
	# must survive the crash campaign, and the -json report must match
	# the schema with at least one positive simulated saving. The stage
	# rebuilds the module inside sandboxes (via the shared build cache),
	# so it runs in the nightly full pass, within a wall-clock budget.
	OPT_BUDGET_S=${OPT_BUDGET_S:-600}
	go build -o /tmp/pmemspec-opt ./cmd/pmemspec-opt
	opt_start=$(date +%s)
	/tmp/pmemspec-opt -workloads naivelog,naivescan -designs IntelX86,DPO \
		-json . > /tmp/pmemspec-opt-report.json
	opt_elapsed=$(( $(date +%s) - opt_start ))
	echo "pmemspec-opt: ${opt_elapsed}s (budget ${OPT_BUDGET_S}s)"
	if [ "$opt_elapsed" -gt "$OPT_BUDGET_S" ]; then
		echo "pmemspec-opt exceeded its ${OPT_BUDGET_S}s wall-clock budget"
		exit 1
	fi
	go run ./cmd/pmemspec-ci opt-check -report /tmp/pmemspec-opt-report.json
fi

echo "== litmus campaign (persist-order lattice vs simulator, budgeted) =="
# Differential validation of the static persist-order lattice: every
# corpus pattern is folded to a per-design ORDERED/UNORDERED verdict and
# executed under boundary-aligned crash points; a recovered image that
# contradicts an ORDERED claim fails the stage. QUICK runs a
# deterministic corpus subsample with capped crash points per cell; the
# full (nightly) pass sweeps all patterns and gates on the full corpus
# floor. The binary is built outside the timed window so the budget
# measures simulation, not compilation.
LITMUS_BUDGET_S=${LITMUS_BUDGET_S:-900}
go build -o /tmp/pmemspec-litmus ./cmd/pmemspec-litmus
litmus_start=$(date +%s)
if [ "${QUICK:-0}" = "1" ]; then
	/tmp/pmemspec-litmus -quick -report /tmp/pmemspec-litmus.json
	litmus_min_patterns=8
else
	/tmp/pmemspec-litmus -points 12 -report /tmp/pmemspec-litmus.json
	litmus_min_patterns=40
fi
litmus_elapsed=$(( $(date +%s) - litmus_start ))
echo "pmemspec-litmus: ${litmus_elapsed}s (budget ${LITMUS_BUDGET_S}s)"
if [ "$litmus_elapsed" -gt "$LITMUS_BUDGET_S" ]; then
	echo "pmemspec-litmus exceeded its ${LITMUS_BUDGET_S}s wall-clock budget"
	exit 1
fi
go run ./cmd/pmemspec-ci litmus-check -report /tmp/pmemspec-litmus.json \
	-min-patterns "$litmus_min_patterns"

echo "== serve smoke (daemon over HTTP vs direct harness) =="
# End-to-end exercise of the service layer: boot pmemspec-serve on an
# ephemeral port, run a small grid twice over HTTP (the second pass must
# be all cache hits with byte-identical results), cross-check one cell
# against a direct in-process harness run, and SIGTERM-drain to a clean
# exit. Cheap enough for the QUICK budget: four tiny cells simulated
# once.
go build -o /tmp/pmemspec-serve ./cmd/pmemspec-serve
go run ./cmd/pmemspec-ci serve-smoke -daemon /tmp/pmemspec-serve -ops 30

echo "ci.sh: all checks passed"
