#!/bin/sh
# ci.sh — the tier-1 verification workflow. Run before every commit.
#
#   ./ci.sh          full check (build, vet, fmt, tests, race-checked harness)
#   QUICK=1 ./ci.sh  same, but the slow figure-shape sweeps run in -short mode
#
# The -race pass covers internal/harness because that is where host-level
# concurrency lives (the experiment worker pool); the simulator itself is
# single-goroutine-at-a-time per kernel but many kernels run concurrently
# under the pool, so the harness suite doubles as the cross-run
# shared-state audit.
set -eu
cd "$(dirname "$0")"

short=""
if [ "${QUICK:-0}" = "1" ]; then
	short="-short"
fi

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" "$unformatted"
	exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== pmemspec-lint -fix -diff ./... =="
# The repo's own persistency-discipline and determinism analyzers
# (internal/analysis); any diagnostic fails the build. Check mode
# (-fix -diff) additionally fails if the redundant-barrier optimizer
# still has applicable edits — apply them with `pmemspec-lint -fix`
# before committing. The whole pass must also fit the wall-clock budget
# (the loader is stdlib-only and signatures-only for dependencies, so a
# lint run costs seconds, not a build).
LINT_BUDGET_S=${LINT_BUDGET_S:-120}
lint_start=$(date +%s)
go run ./cmd/pmemspec-lint -fix -diff ./...
lint_elapsed=$(( $(date +%s) - lint_start ))
echo "pmemspec-lint: ${lint_elapsed}s (budget ${LINT_BUDGET_S}s)"
if [ "$lint_elapsed" -gt "$LINT_BUDGET_S" ]; then
	echo "pmemspec-lint exceeded its ${LINT_BUDGET_S}s wall-clock budget"
	exit 1
fi

echo "== go build ./... =="
go build ./...

echo "== go test $short ./... =="
go test $short ./...

echo "== go test -race $short ./internal/harness/... ./internal/sim/... =="
# -timeout raised above the go default: the race detector is ~10x and
# the harness sweeps are minutes-long even unraced on small hosts.
go test -race -timeout 60m $short ./internal/harness/... ./internal/sim/...

echo "== crash campaign (all designs, boundary-aligned, injection) =="
# A small end-to-end fault-injection campaign: every design × every
# workload, persist-boundary-aligned crash points plus a coarse uniform
# grid, with synthetic misspeculations injected through the OS relay.
# Exits non-zero on any invariant violation or failed trial.
go run ./cmd/pmemspec-crash -all -threads 2 -ops 12 -points 2 -maxus 100 \
	-boundaries -boundary-budget 2 -max-points 5 \
	-inject-stale-ns 4000 -inject-ooo-ns 7000 -inject-count 3 \
	-report /tmp/pmemspec-campaign.json
# The report must be independent of pool width (checked on one cell;
# the harness suite covers the multi-design case).
go run ./cmd/pmemspec-crash -workload queue -threads 2 -ops 12 -points 3 -maxus 100 \
	-boundaries -boundary-budget 2 -inject-stale-ns 4000 -inject-count 3 \
	-parallel 1 -report /tmp/pmemspec-campaign-p1.json >/dev/null
go run ./cmd/pmemspec-crash -workload queue -threads 2 -ops 12 -points 3 -maxus 100 \
	-boundaries -boundary-budget 2 -inject-stale-ns 4000 -inject-count 3 \
	-parallel 8 -report /tmp/pmemspec-campaign-p8.json >/dev/null
cmp /tmp/pmemspec-campaign-p1.json /tmp/pmemspec-campaign-p8.json

echo "ci.sh: all checks passed"
