#!/bin/sh
# ci.sh — the tier-1 verification workflow. Run before every commit.
#
#   ./ci.sh          full check (build, vet, fmt, tests, race-checked harness)
#   QUICK=1 ./ci.sh  same, but the slow figure-shape sweeps run in -short mode
#
# The -race pass covers internal/harness because that is where host-level
# concurrency lives (the experiment worker pool); the simulator itself is
# single-goroutine-at-a-time per kernel but many kernels run concurrently
# under the pool, so the harness suite doubles as the cross-run
# shared-state audit.
#
# Every stage is timed; the run ends with a per-stage wall-clock table
# and writes the same data machine-readably to /tmp/pmemspec-ci-times.json
# (CI uploads it as an artifact, so stage-cost drift is visible across
# runs without re-reading logs).
set -eu
cd "$(dirname "$0")"

short=""
if [ "${QUICK:-0}" = "1" ]; then
	short="-short"
fi

ci_start=$(date +%s)
cur_slug=""
cur_start=$ci_start
stage_rows=""
TIMES_FILE=${TIMES_FILE:-/tmp/pmemspec-ci-times.json}

# stage SLUG PRETTY... — closes the previous stage's timer, starts a new
# one, and prints the banner. SLUG keys the timing table; keep it short
# and space-free.
stage() {
	stage_slug=$1
	shift
	stage_now=$(date +%s)
	if [ -n "$cur_slug" ]; then
		stage_rows="${stage_rows}${cur_slug} $((stage_now - cur_start))
"
	fi
	cur_slug=$stage_slug
	cur_start=$stage_now
	echo "== $* =="
}

# finish_stages — closes the last stage, prints the timing table, and
# writes $TIMES_FILE.
finish_stages() {
	fin_now=$(date +%s)
	if [ -n "$cur_slug" ]; then
		stage_rows="${stage_rows}${cur_slug} $((fin_now - cur_start))
"
		cur_slug=""
	fi
	total=$((fin_now - ci_start))
	echo "== stage timing =="
	printf '%-24s %8s\n' stage seconds
	printf '%s' "$stage_rows" | while read -r row_name row_secs; do
		printf '%-24s %8s\n' "$row_name" "$row_secs"
	done
	printf '%-24s %8s\n' total "$total"
	quick_bool=false
	if [ "${QUICK:-0}" = "1" ]; then
		quick_bool=true
	fi
	{
		printf '{"quick":%s,"total_seconds":%s,"stages":[' "$quick_bool" "$total"
		printf '%s' "$stage_rows" |
			awk '{ printf "%s{\"name\":\"%s\",\"seconds\":%s}", (NR > 1 ? "," : ""), $1, $2 }'
		printf ']}\n'
	} >"$TIMES_FILE"
	echo "stage timings written to $TIMES_FILE"
}

# run_budgeted NAME BUDGET_S COMMAND — runs COMMAND (a sh -c script, so
# redirections work) and fails the build if its wall-clock exceeds the
# budget. Build binaries before calling this: the budget should measure
# the tool's work, not compilation.
run_budgeted() {
	rb_name=$1
	rb_budget=$2
	rb_cmd=$3
	rb_start=$(date +%s)
	sh -c "$rb_cmd"
	rb_elapsed=$(($(date +%s) - rb_start))
	echo "$rb_name: ${rb_elapsed}s (budget ${rb_budget}s)"
	if [ "$rb_elapsed" -gt "$rb_budget" ]; then
		echo "$rb_name exceeded its ${rb_budget}s wall-clock budget"
		exit 1
	fi
}

stage gofmt "gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" "$unformatted"
	exit 1
fi

stage vet "go vet ./..."
go vet ./...

stage lint "pmemspec-lint -fix -diff ./... (budgeted)"
# The repo's own persistency-discipline and determinism analyzers
# (internal/analysis); any diagnostic fails the build. Check mode
# (-fix -diff) additionally fails if the redundant-barrier optimizer
# still has applicable edits — apply them with `pmemspec-lint -fix`
# before committing. The analysis must also fit the wall-clock budget
# (the loader is stdlib-only and signatures-only for dependencies, so a
# lint run costs seconds, not a build).
go build -o /tmp/pmemspec-lint ./cmd/pmemspec-lint
run_budgeted pmemspec-lint "${LINT_BUDGET_S:-120}" \
	"/tmp/pmemspec-lint -fix -diff ./..."

stage build "go build ./..."
go build ./...

stage test "go test $short ./..."
go test $short ./...

stage coverage "coverage floor (./internal/...)"
# Statement coverage over the simulator packages, gated on the
# checked-in floor (COVERAGE_FLOOR). -short always: the floor tracks the
# cheap suite, so quick and full runs gate identically.
go test -short -coverprofile=/tmp/pmemspec-cover.out ./internal/... >/dev/null
coverage=$(go tool cover -func=/tmp/pmemspec-cover.out | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
floor=$(cat COVERAGE_FLOOR)
echo "coverage ${coverage}% (floor ${floor}%)"
if ! awk -v c="$coverage" -v f="$floor" 'BEGIN { exit !(c+0 >= f+0) }'; then
	echo "coverage ${coverage}% fell below the checked-in floor ${floor}%"
	exit 1
fi

stage race "go test -race $short ./internal/harness/... ./internal/sim/... ./internal/serve/..."
# -timeout raised above the go default: the race detector is ~10x and
# the harness sweeps are minutes-long even unraced on small hosts.
# internal/serve joins the race pass because it is the other place
# host-level concurrency lives (HTTP handlers racing the job
# dispatchers and the result cache).
go test -race -timeout 60m $short ./internal/harness/... ./internal/sim/... ./internal/serve/...

stage crash-campaign "crash campaign (all designs, boundary-aligned, injection)"
# A small end-to-end fault-injection campaign: every design × every
# workload, persist-boundary-aligned crash points plus a coarse uniform
# grid, with synthetic misspeculations injected through the OS relay.
# Exits non-zero on any invariant violation or failed trial.
go run ./cmd/pmemspec-crash -all -threads 2 -ops 12 -points 2 -maxus 100 \
	-boundaries -boundary-budget 2 -max-points 5 \
	-inject-stale-ns 4000 -inject-ooo-ns 7000 -inject-count 3 \
	-report /tmp/pmemspec-campaign.json
# The report must be independent of pool width (checked on one cell;
# the harness suite covers the multi-design case).
go run ./cmd/pmemspec-crash -workload queue -threads 2 -ops 12 -points 3 -maxus 100 \
	-boundaries -boundary-budget 2 -inject-stale-ns 4000 -inject-count 3 \
	-parallel 1 -report /tmp/pmemspec-campaign-p1.json >/dev/null
go run ./cmd/pmemspec-crash -workload queue -threads 2 -ops 12 -points 3 -maxus 100 \
	-boundaries -boundary-budget 2 -inject-stale-ns 4000 -inject-count 3 \
	-parallel 8 -report /tmp/pmemspec-campaign-p8.json >/dev/null
cmp /tmp/pmemspec-campaign-p1.json /tmp/pmemspec-campaign-p8.json

stage metrics-determinism "metrics grid determinism (step core, pool width 1 vs 8)"
# The observability layer's acceptance check: the (design, workload)
# metrics grid of a small Figure 9 sweep must serialize byte-identically
# whether the runs share one worker or race across eight. The execution
# core is pinned to the default step core explicitly so an inherited
# PMEMSPEC_EXEC_CORE cannot silently change what this gate measures.
# The -parallel 1 run doubles as the fresh wall-clock record for the
# perf gate below.
go build -o /tmp/pmemspec-bench ./cmd/pmemspec-bench
PMEMSPEC_EXEC_CORE=step /tmp/pmemspec-bench -experiment fig9 -ops 50 -threads 2 -seed 1 -parallel 1 -json \
	-metrics-out /tmp/pmemspec-metrics-p1.json \
	-bench-out /tmp/pmemspec-bench-small.json >/dev/null
PMEMSPEC_EXEC_CORE=step /tmp/pmemspec-bench -experiment fig9 -ops 50 -threads 2 -seed 1 -parallel 8 -json \
	-metrics-out /tmp/pmemspec-metrics-p8.json >/dev/null
cmp /tmp/pmemspec-metrics-p1.json /tmp/pmemspec-metrics-p8.json

stage exec-core-identity "execution-core identity (step vs handshake, tiny grid)"
# Both execution cores must produce byte-identical metrics: the step
# core's inline dispatch is a pure mechanism change, and this is the
# cross-check that keeps the legacy handshake core honest as an oracle.
PMEMSPEC_EXEC_CORE=step /tmp/pmemspec-bench -experiment fig9 -ops 12 -threads 2 -seed 1 -parallel 1 -json \
	-metrics-out /tmp/pmemspec-metrics-step.json >/dev/null
PMEMSPEC_EXEC_CORE=handshake /tmp/pmemspec-bench -experiment fig9 -ops 12 -threads 2 -seed 1 -parallel 1 -json \
	-metrics-out /tmp/pmemspec-metrics-handshake.json >/dev/null
cmp /tmp/pmemspec-metrics-step.json /tmp/pmemspec-metrics-handshake.json

stage bench-cmp "bench-cmp small-grid perf gate"
# Wall-clock regression gate against the checked-in small-grid baseline.
# BENCH_TOL is loose by default because hosted runners and laptops differ
# widely; tighten it (e.g. 0.15) when comparing on the baseline host.
go run ./cmd/pmemspec-ci bench-cmp -baseline BENCH_baseline_small.json \
	-current /tmp/pmemspec-bench-small.json -tolerance "${BENCH_TOL:-0.5}"

if [ "${QUICK:-0}" != "1" ]; then
	stage opt-loop "opt-loop (optimize -> simulate -> verify, budgeted)"
	# The closed optimization loop on the planted naive workloads: the
	# optimization analyzers' edits must apply cleanly to a sandboxed
	# module copy, the copy must re-analyze clean, the edited workloads
	# must survive the crash campaign, and the -json report must match
	# the schema with at least one positive simulated saving. The stage
	# rebuilds the module inside sandboxes (via the shared build cache),
	# so it runs in the nightly full pass, within a wall-clock budget.
	go build -o /tmp/pmemspec-opt ./cmd/pmemspec-opt
	run_budgeted pmemspec-opt "${OPT_BUDGET_S:-600}" \
		"/tmp/pmemspec-opt -workloads naivelog,naivescan -designs IntelX86,DPO -json . > /tmp/pmemspec-opt-report.json"
	go run ./cmd/pmemspec-ci opt-check -report /tmp/pmemspec-opt-report.json
fi

stage litmus "litmus campaign (persist-order lattice vs simulator, budgeted)"
# Differential validation of the static persist-order lattice: every
# corpus pattern is folded to a per-design ORDERED/UNORDERED verdict and
# executed under boundary-aligned crash points; a recovered image that
# contradicts an ORDERED claim fails the stage. QUICK runs a
# deterministic corpus subsample with capped crash points per cell; the
# full (nightly) pass sweeps all patterns and gates on the full corpus
# floor.
go build -o /tmp/pmemspec-litmus ./cmd/pmemspec-litmus
if [ "${QUICK:-0}" = "1" ]; then
	run_budgeted pmemspec-litmus "${LITMUS_BUDGET_S:-900}" \
		"/tmp/pmemspec-litmus -quick -report /tmp/pmemspec-litmus.json"
	litmus_min_patterns=8
else
	run_budgeted pmemspec-litmus "${LITMUS_BUDGET_S:-900}" \
		"/tmp/pmemspec-litmus -points 12 -report /tmp/pmemspec-litmus.json"
	litmus_min_patterns=40
fi
go run ./cmd/pmemspec-ci litmus-check -report /tmp/pmemspec-litmus.json \
	-min-patterns "$litmus_min_patterns"

stage mc "model checker (exhaustive MT litmus schedules, DPOR, budgeted)"
# The exhaustive small-scope model checker: every multi-threaded litmus
# pattern × design, every non-equivalent thread interleaving (sleep-set
# partial-order reduction), every reachable crash image per schedule.
# QUICK runs a deterministic corpus subsample with capped schedules per
# cell; the full (nightly) pass enumerates exhaustively and refuses
# capped cells. Either way the gate demands zero refutations and a
# schedule count strictly below the unreduced interleaving bound.
go build -o /tmp/pmemspec-mc ./cmd/pmemspec-mc
if [ "${QUICK:-0}" = "1" ]; then
	run_budgeted pmemspec-mc "${MC_BUDGET_S:-600}" \
		"/tmp/pmemspec-mc -quick -report /tmp/pmemspec-mc.json"
	go run ./cmd/pmemspec-ci mc-check -report /tmp/pmemspec-mc.json \
		-min-patterns 8 -allow-capped
else
	run_budgeted pmemspec-mc "${MC_BUDGET_S:-600}" \
		"/tmp/pmemspec-mc -report /tmp/pmemspec-mc.json"
	go run ./cmd/pmemspec-ci mc-check -report /tmp/pmemspec-mc.json
fi

stage serve-smoke "serve smoke (daemon over HTTP vs direct harness)"
# End-to-end exercise of the service layer: boot pmemspec-serve on an
# ephemeral port, run a small grid twice over HTTP (the second pass must
# be all cache hits with byte-identical results), cross-check one cell
# against a direct in-process harness run, and SIGTERM-drain to a clean
# exit. Cheap enough for the QUICK budget: four tiny cells simulated
# once.
go build -o /tmp/pmemspec-serve ./cmd/pmemspec-serve
go run ./cmd/pmemspec-ci serve-smoke -daemon /tmp/pmemspec-serve -ops 30

finish_stages
echo "ci.sh: all checks passed"
