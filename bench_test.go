// Package pmemspec's root benchmarks regenerate the paper's evaluation
// under `go test -bench`. One benchmark family per table/figure:
//
//	BenchmarkTable3Config   — prints the simulated configuration (Table 3)
//	BenchmarkFig9/...       — 8-core design comparison (Figure 9)
//	BenchmarkFig10/...      — 16/32/64-core sensitivity (Figure 10)
//	BenchmarkFig11/...      — speculation-buffer sizes (Figure 11)
//	BenchmarkFig12/...      — persist-path latencies (Figure 12)
//	BenchmarkMisspec/...    — §8.4 misspeculation rates
//	BenchmarkAblation/...   — §5.1.3 vs §5.1.4 detection schemes
//	BenchmarkRecovery/...   — lazy vs eager misspeculation recovery (§6.2)
//
// Each iteration runs a complete simulation; the interesting output is
// the reported custom metrics (normalized throughput, detections, …),
// not the wall-clock ns/op. Absolute simulated throughputs are not
// expected to match the paper's gem5 numbers — the *shape* (who wins,
// by roughly what factor) is the reproduction target; see EXPERIMENTS.md.
package pmemspec_test

import (
	"fmt"
	"testing"

	"pmemspec/internal/fatomic"
	"pmemspec/internal/harness"
	"pmemspec/internal/machine"
	"pmemspec/internal/mem"
	"pmemspec/internal/osint"
	"pmemspec/internal/persist"
	"pmemspec/internal/sim"
	"pmemspec/internal/workload"
)

// benchOps keeps a full simulation per iteration affordable.
const benchOps = 150

func benchParams(name string, threads int) workload.Params {
	p := workload.Params{Threads: threads, Ops: benchOps, DataSize: 64, Seed: 1}
	if name == "memcached" {
		p.DataSize = 1024
	}
	return p
}

// BenchmarkTable3Config reports the simulated machine configuration.
func BenchmarkTable3Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := machine.DefaultConfig(machine.PMEMSpec, 8)
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log(cfg.String())
		}
	}
}

// BenchmarkFig9 runs each benchmark × design pair at 8 cores and reports
// throughput normalized to the IntelX86 baseline.
func BenchmarkFig9(b *testing.B) {
	for _, name := range workload.Names() {
		name := name
		base := 0.0
		for _, d := range machine.Designs {
			d := d
			b.Run(fmt.Sprintf("%s/%s", name, d), func(b *testing.B) {
				var last harness.Result
				for i := 0; i < b.N; i++ {
					w, err := workload.ByName(name)
					if err != nil {
						b.Fatal(err)
					}
					res, err := harness.Run(d, w, benchParams(name, 8))
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				if d == machine.IntelX86 {
					base = last.Throughput
				}
				b.ReportMetric(last.Throughput, "fases/sim-s")
				if base > 0 {
					b.ReportMetric(last.Throughput/base, "norm-vs-x86")
				}
			})
		}
	}
}

// BenchmarkFig10 runs the design comparison at 16/32/64 cores on a
// representative subset (full panels via cmd/pmemspec-bench).
func BenchmarkFig10(b *testing.B) {
	for _, cores := range []int{16, 32, 64} {
		for _, name := range []string{"queue", "tpcc", "vacation"} {
			base := 0.0
			for _, d := range machine.Designs {
				cores, name, d := cores, name, d
				b.Run(fmt.Sprintf("%dcores/%s/%s", cores, name, d), func(b *testing.B) {
					var last harness.Result
					for i := 0; i < b.N; i++ {
						w, err := workload.ByName(name)
						if err != nil {
							b.Fatal(err)
						}
						p := benchParams(name, cores)
						p.Ops = 60 // scale with core count
						res, err := harness.Run(d, w, p)
						if err != nil {
							b.Fatal(err)
						}
						last = res
					}
					if d == machine.IntelX86 {
						base = last.Throughput
					}
					b.ReportMetric(last.Throughput, "fases/sim-s")
					if base > 0 {
						b.ReportMetric(last.Throughput/base, "norm-vs-x86")
					}
				})
			}
		}
	}
}

// BenchmarkFig11 sweeps the speculation-buffer size on memcached in its
// eviction-streaming configuration (buffer entries come from dirty LLC
// evictions, §8.3.2, so the value store must exceed the LLC).
func BenchmarkFig11(b *testing.B) {
	for _, entries := range []int{1, 2, 4, 8, 16} {
		entries := entries
		b.Run(fmt.Sprintf("entries-%d", entries), func(b *testing.B) {
			var last harness.Result
			for i := 0; i < b.N; i++ {
				w, err := workload.ByName("memcached")
				if err != nil {
					b.Fatal(err)
				}
				p := benchParams("memcached", 8)
				p.Scale = 32768
				res, err := harness.Run(machine.PMEMSpec, w, p,
					harness.WithSpecBufEntries(entries))
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Throughput, "fases/sim-s")
			b.ReportMetric(float64(last.MStats.SpecOverflowPauses), "overflow-pauses")
		})
	}
}

// BenchmarkFig12 sweeps the persist-path latency for PMEM-Spec (HOPS's
// drain sweep via cmd/pmemspec-bench).
func BenchmarkFig12(b *testing.B) {
	for _, latNS := range []int64{20, 40, 60, 80, 100} {
		latNS := latNS
		b.Run(fmt.Sprintf("path-%dns", latNS), func(b *testing.B) {
			var last harness.Result
			for i := 0; i < b.N; i++ {
				w, err := workload.ByName("queue")
				if err != nil {
					b.Fatal(err)
				}
				res, err := harness.Run(machine.PMEMSpec, w, benchParams("queue", 8),
					harness.WithPathLatencyNS(latNS))
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Throughput, "fases/sim-s")
		})
	}
}

// BenchmarkMisspec reports §8.4: misspeculation counts per benchmark at
// the default configuration (expected: zero everywhere).
func BenchmarkMisspec(b *testing.B) {
	for _, name := range workload.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			var detections int
			for i := 0; i < b.N; i++ {
				w, err := workload.ByName(name)
				if err != nil {
					b.Fatal(err)
				}
				res, err := harness.Run(machine.PMEMSpec, w, benchParams(name, 8))
				if err != nil {
					b.Fatal(err)
				}
				detections = len(res.MStats.Misspeculations)
			}
			b.ReportMetric(float64(detections), "misspeculations")
		})
	}
}

// BenchmarkAblation compares the detection schemes (§5.1.3 vs §5.1.4).
func BenchmarkAblation(b *testing.B) {
	for _, fetchBased := range []bool{false, true} {
		fetchBased := fetchBased
		name := "eviction-based"
		if fetchBased {
			name = "fetch-based"
		}
		b.Run(name, func(b *testing.B) {
			var last harness.Result
			for i := 0; i < b.N; i++ {
				w, err := workload.ByName("memcached")
				if err != nil {
					b.Fatal(err)
				}
				opts := []harness.Option{func(c *machine.Config) { c.SpecWindow = 2000 }}
				if fetchBased {
					opts = append(opts, harness.WithFetchBasedDetection())
				}
				res, err := harness.RunDetectOnly(machine.PMEMSpec, w, benchParams("memcached", 4), opts...)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(len(last.MStats.Misspeculations)), "detections")
			b.ReportMetric(float64(last.MStats.StaleFetches), "actual-stale")
		})
	}
}

// BenchmarkRecovery compares lazy vs eager misspeculation recovery on
// the synthetic generator under an inflated path latency (§6.2).
func BenchmarkRecovery(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    fatomic.Mode
	}{{"lazy", fatomic.Lazy}, {"eager", fatomic.Eager}} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var aborts uint64
			var kernel float64
			for i := 0; i < b.N; i++ {
				syn := workload.NewSynthetic()
				p := workload.Params{Threads: 1, Ops: 60, DataSize: 64, Seed: 1}
				res, err := harness.RunWithMode(machine.PMEMSpec, syn, p, mode.m,
					harness.WithSmallLLC(32*1024, 2),
					harness.WithPathLatencyNS(500),
					func(c *machine.Config) { c.SpecWindow = 8000 })
				if err != nil {
					b.Fatal(err)
				}
				aborts = res.RStats.Aborts
				kernel = res.KernelTime.Seconds()
			}
			b.ReportMetric(float64(aborts), "aborts")
			b.ReportMetric(kernel*1e6, "sim-us")
		})
	}
}

// BenchmarkLoggingStyles compares the undo-logging FASE runtime against
// the redo-logging transactional runtime on each design: redo trades
// per-store order barriers for extra commit barriers, so the relaxed
// designs favour it while PMEM-Spec's free per-store ordering makes undo
// logging equally cheap.
func BenchmarkLoggingStyles(b *testing.B) {
	for _, d := range machine.Designs {
		for _, style := range []string{"undo", "redo"} {
			d, style := d, style
			b.Run(fmt.Sprintf("%s/%s", d, style), func(b *testing.B) {
				var kernel float64
				for i := 0; i < b.N; i++ {
					t := measureLoggingStyle(b, d, style)
					kernel = t
				}
				b.ReportMetric(kernel, "sim-us")
			})
		}
	}
}

func measureLoggingStyle(b *testing.B, d machine.Design, style string) float64 {
	cfg := machine.DefaultConfig(d, 1)
	cfg.MemBytes = 16 << 20
	m, err := machine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	osl := osint.New(m)
	model := persist.ForDesign(d)
	heap := mem.NewHeap(m.Space(), fatomic.HeapReserve(1))
	base := heap.AllocBlock(64 * 64)
	var start, end sim.Time
	switch style {
	case "undo":
		rt := fatomic.New(m, model, osl, fatomic.Lazy)
		m.Spawn("w", func(th *machine.Thread) {
			rt.WarmLog(th)
			start = th.Clock()
			for op := 0; op < 300; op++ {
				rt.Run(th, func(f *fatomic.FASE) {
					for s := 0; s < 6; s++ {
						a := base + mem.Addr(((op*7+s)%64)*64)
						f.StoreU64(a, f.LoadU64(a)+1)
					}
				})
			}
			end = th.Clock()
		})
	case "redo":
		rt := fatomic.NewRedo(m, model, osl, fatomic.Lazy)
		m.Spawn("w", func(th *machine.Thread) {
			rt.WarmLog(th)
			start = th.Clock()
			for op := 0; op < 300; op++ {
				rt.Run(th, func(tx *fatomic.Tx) {
					for s := 0; s < 6; s++ {
						a := base + mem.Addr(((op*7+s)%64)*64)
						tx.StoreU64(a, tx.LoadU64(a)+1)
					}
				})
			}
			end = th.Clock()
		})
	}
	if err := m.Run(); err != nil {
		b.Fatal(err)
	}
	return (end - start).Seconds() * 1e6
}

// BenchmarkStrandExtension compares the StrandWeaver extension against
// HOPS and PMEM-Spec on the long-transaction workloads where strand
// concurrency matters; the expected ordering (HOPS < StrandWeaver <
// PMEM-Spec) mirrors the papers' results.
func BenchmarkStrandExtension(b *testing.B) {
	for _, name := range []string{"tpcc", "vacation"} {
		for _, d := range []machine.Design{machine.HOPS, machine.Strand, machine.PMEMSpec} {
			name, d := name, d
			b.Run(fmt.Sprintf("%s/%s", name, d), func(b *testing.B) {
				var last harness.Result
				for i := 0; i < b.N; i++ {
					w, err := workload.ByName(name)
					if err != nil {
						b.Fatal(err)
					}
					res, err := harness.Run(d, w, benchParams(name, 8))
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.Throughput, "fases/sim-s")
			})
		}
	}
}
